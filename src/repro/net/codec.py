"""Struct-packed binary wire codec for hot message types.

The original size model charged every envelope a rough
:data:`~repro.net.message.ENVELOPE_BYTES` plus a per-value guess.  The
data-path messages — page fetch/push, token traffic, and their batch
variants — dominate simulated bandwidth, so those types now have a
real binary encoding: a fixed little-endian header plus a tagged,
varint-delimited payload.  ``Message.size_bytes`` reports the *exact*
encoded length for registered types (installed as a hook by
:func:`install`; see :mod:`repro.net.sim`) and falls back to the old
object estimate for cold control-plane types.

Wire layout (documented for docs/performance.md):

``header``
    ``<BBiiqqq``: magic ``0xC5``, type id, src, dst, msg_id,
    request_id, reply_to (``-1`` encodes ``None``).

``payload``
    varint field count, then per field: varint-length key (UTF-8) and
    a tagged value.  Tags: ``0`` None, ``1`` False, ``2`` True,
    ``3`` int (zigzag varint, arbitrary precision — global addresses
    are 128-bit), ``4`` float (8-byte IEEE double), ``5`` bytes
    (varint length + raw; ``bytearray``/``memoryview`` payloads encode
    identically and decode as ``bytes``), ``6`` str (varint length +
    UTF-8), ``7`` list and ``8`` tuple (varint count + items — the
    distinction matters: diff runs are tuples, batch items are lists),
    ``9`` dict (varint count + key/value pairs, string keys only).

Unsupported payload values (arbitrary objects) make ``encode`` and
``encoded_size`` return None, deferring to the object estimator — the
codec never guesses.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Tuple

from repro.net.message import Message, MessageType, set_size_codec

_MAGIC = 0xC5

_HEADER = struct.Struct("<BBiiqqq")
_DOUBLE = struct.Struct("<d")

#: Stable wire ids for the hot (data-path) message types.  Cold
#: control-plane types intentionally stay on the object encoding.
WIRE_IDS: Dict[MessageType, int] = {
    MessageType.PAGE_FETCH: 1,
    MessageType.PAGE_DATA: 2,
    MessageType.LOCK_REQUEST: 3,
    MessageType.LOCK_REPLY: 4,
    MessageType.UPDATE_PUSH: 5,
    MessageType.UPDATE_ACK: 6,
    MessageType.INVALIDATE: 7,
    MessageType.INVALIDATE_ACK: 8,
    MessageType.SHARER_REGISTER: 9,
    MessageType.SHARER_UNREGISTER: 10,
    MessageType.PAGE_FETCH_BATCH: 11,
    MessageType.PAGE_DATA_BATCH: 12,
    MessageType.TOKEN_ACQUIRE_BATCH: 13,
    MessageType.TOKEN_GRANT_BATCH: 14,
    MessageType.UPDATE_PUSH_BATCH: 15,
    MessageType.UPDATE_ACK_BATCH: 16,
    MessageType.ERROR: 17,
}

_TYPE_BY_ID: Dict[int, MessageType] = {
    wire_id: msg_type for msg_type, wire_id in WIRE_IDS.items()
}

# Value tags.
_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3
_T_FLOAT = 4
_T_BYTES = 5
_T_STR = 6
_T_LIST = 7
_T_TUPLE = 8
_T_DICT = 9


class Unencodable(Exception):
    """Raised internally for payload values the codec does not cover."""


# --- varints ---------------------------------------------------------------

def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _varint_size(value: int) -> int:
    size = 1
    value >>= 7
    while value:
        size += 1
        value >>= 7
    return size


def _read_varint(data: memoryview, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> (value.bit_length() + 1)) if value < 0 \
        else value << 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


# --- value encoding --------------------------------------------------------

def _encode_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is False:
        out.append(_T_FALSE)
    elif value is True:
        out.append(_T_TRUE)
    elif type(value) is int:
        out.append(_T_INT)
        _write_varint(out, _zigzag(value))
    elif type(value) is float:
        out.append(_T_FLOAT)
        out += _DOUBLE.pack(value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        out.append(_T_BYTES)
        _write_varint(out, len(value))
        out += value
    elif type(value) is str:
        raw = value.encode("utf-8")
        out.append(_T_STR)
        _write_varint(out, len(raw))
        out += raw
    elif type(value) is list:
        out.append(_T_LIST)
        _write_varint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif type(value) is tuple:
        out.append(_T_TUPLE)
        _write_varint(out, len(value))
        for item in value:
            _encode_value(out, item)
    elif type(value) is dict:
        out.append(_T_DICT)
        _write_varint(out, len(value))
        for key, item in value.items():
            if type(key) is not str:
                raise Unencodable(f"non-str dict key {key!r}")
            raw = key.encode("utf-8")
            _write_varint(out, len(raw))
            out += raw
            _encode_value(out, item)
    else:
        raise Unencodable(f"value of type {type(value).__name__}")


def _value_size(value: Any) -> int:
    """Exact encoded size of one value, without building the bytes.

    Mirrors :func:`_encode_value` case by case; the codec property
    tests pin ``len(encode(msg)) == encoded_size(msg)``.
    """
    if value is None or value is False or value is True:
        return 1
    if type(value) is int:
        return 1 + _varint_size(_zigzag(value))
    if type(value) is float:
        return 9
    if isinstance(value, (bytes, bytearray, memoryview)):
        n = len(value)
        return 1 + _varint_size(n) + n
    if type(value) is str:
        n = len(value.encode("utf-8"))
        return 1 + _varint_size(n) + n
    if type(value) is list or type(value) is tuple:
        size = 1 + _varint_size(len(value))
        for item in value:
            size += _value_size(item)
        return size
    if type(value) is dict:
        size = 1 + _varint_size(len(value))
        for key, item in value.items():
            if type(key) is not str:
                raise Unencodable(f"non-str dict key {key!r}")
            n = len(key.encode("utf-8"))
            size += _varint_size(n) + n + _value_size(item)
        return size
    raise Unencodable(f"value of type {type(value).__name__}")


def _decode_value(data: memoryview, pos: int) -> Tuple[Any, int]:
    tag = data[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_INT:
        raw, pos = _read_varint(data, pos)
        return _unzigzag(raw), pos
    if tag == _T_FLOAT:
        return _DOUBLE.unpack_from(data, pos)[0], pos + 8
    if tag == _T_BYTES:
        n, pos = _read_varint(data, pos)
        return bytes(data[pos : pos + n]), pos + n
    if tag == _T_STR:
        n, pos = _read_varint(data, pos)
        return str(data[pos : pos + n], "utf-8"), pos + n
    if tag == _T_LIST or tag == _T_TUPLE:
        count, pos = _read_varint(data, pos)
        items: List[Any] = []
        for _ in range(count):
            item, pos = _decode_value(data, pos)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_DICT:
        count, pos = _read_varint(data, pos)
        mapping: Dict[str, Any] = {}
        for _ in range(count):
            n, pos = _read_varint(data, pos)
            key = str(data[pos : pos + n], "utf-8")
            pos += n
            mapping[key], pos = _decode_value(data, pos)
        return mapping, pos
    raise ValueError(f"unknown value tag {tag}")


# --- message encoding ------------------------------------------------------

def encode(message: Message) -> Optional[bytes]:
    """Binary encoding of a hot-type message, or None to fall back.

    None means either the type is not registered or the payload holds
    a value outside the wire vocabulary (e.g. a descriptor object);
    such messages keep the object encoding and estimated size.
    """
    wire_id = WIRE_IDS.get(message.msg_type)
    if wire_id is None:
        return None
    out = bytearray(
        _HEADER.pack(
            _MAGIC,
            wire_id,
            message.src,
            message.dst,
            message.msg_id,
            -1 if message.request_id is None else message.request_id,
            -1 if message.reply_to is None else message.reply_to,
        )
    )
    payload = message.payload
    _write_varint(out, len(payload))
    try:
        for key, value in payload.items():
            if type(key) is not str:
                return None
            raw = key.encode("utf-8")
            _write_varint(out, len(raw))
            out += raw
            _encode_value(out, value)
    except Unencodable:
        return None
    return bytes(out)


def decode(data: bytes) -> Message:
    """Inverse of :func:`encode`; raises ValueError on malformed input."""
    magic, wire_id, src, dst, msg_id, request_id, reply_to = (
        _HEADER.unpack_from(data, 0)
    )
    if magic != _MAGIC:
        raise ValueError(f"bad magic byte {magic:#x}")
    msg_type = _TYPE_BY_ID.get(wire_id)
    if msg_type is None:
        raise ValueError(f"unknown wire type id {wire_id}")
    view = memoryview(data)
    pos = _HEADER.size
    count, pos = _read_varint(view, pos)
    payload: Dict[str, Any] = {}
    for _ in range(count):
        n, pos = _read_varint(view, pos)
        key = str(view[pos : pos + n], "utf-8")
        pos += n
        payload[key], pos = _decode_value(view, pos)
    if pos != len(data):
        raise ValueError(f"{len(data) - pos} trailing bytes after payload")
    return Message(
        msg_type=msg_type,
        src=src,
        dst=dst,
        payload=payload,
        request_id=None if request_id == -1 else request_id,
        reply_to=None if reply_to == -1 else reply_to,
        msg_id=msg_id,
    )


def encoded_size(message: Message) -> Optional[int]:
    """Exact wire size of a hot-type message without encoding it.

    The simulated network asks for a size on *every* send, so this is
    arithmetic over the payload rather than a throwaway encode; the
    property tests hold it bit-for-bit equal to ``len(encode(msg))``.
    Returns None (object-estimate fallback) exactly when ``encode``
    would.
    """
    if message.msg_type not in WIRE_IDS:
        return None
    payload = message.payload
    size = _HEADER.size + _varint_size(len(payload))
    try:
        for key, value in payload.items():
            if type(key) is not str:
                return None
            n = len(key.encode("utf-8"))
            size += _varint_size(n) + n + _value_size(value)
    except Unencodable:
        return None
    return size


def install() -> None:
    """Register :func:`encoded_size` as the Message size hook.

    Called by :mod:`repro.net.sim` at import; keeps the dependency
    one-way (codec imports message, never the reverse).
    """
    set_size_codec(encoded_size)
