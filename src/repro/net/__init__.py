"""Messaging substrate for Khazana.

The paper (Section 5) notes that only the messaging layer of Khazana is
system dependent.  This package is that layer: an abstract transport, a
message vocabulary, a request/response (RPC) layer with timeouts and
retries, and a deterministic discrete-event network simulator that
stands in for the Unix socket layer the original prototype used.

The simulator gives every experiment in ``benchmarks/`` a reproducible
virtual clock, configurable LAN/WAN latency, message loss, and network
partitions, while keeping all protocol logic identical to what a real
socket transport would exercise.
"""

from repro.net.clock import EventScheduler, VirtualClock
from repro.net.message import Message, MessageType
from repro.net.sim import LinkSpec, NetworkStats, SimNetwork, Topology
from repro.net.tasks import Future, TaskRunner
from repro.net.transport import Transport

__all__ = [
    "EventScheduler",
    "Future",
    "LinkSpec",
    "Message",
    "MessageType",
    "NetworkStats",
    "SimNetwork",
    "TaskRunner",
    "Topology",
    "Transport",
    "VirtualClock",
]
