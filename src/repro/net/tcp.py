"""Real-socket transport: length-prefixed frames over asyncio streams.

The second implementation of the :class:`~repro.net.transport.Transport`
seam (the first is the simulator).  Semantics deliberately mirror the
datagram model every protocol is written against:

- ``send`` never blocks and never raises: frames queue on a lazy
  per-destination :class:`ServiceConnection` and a dead or unreachable
  peer silently drops them (counted in ``stats.messages_dropped``),
  exactly as the simulator drops traffic to a crashed node.  The RPC
  layer's retransmission machinery provides reliability on top, same
  as over the sim.
- delivery order per (src, dst) pair follows the stream, matching the
  jitter-free simulator link.

Each daemon process (or each in-process daemon, in the transport
bench) owns one ``TcpTransport`` listening on its address-book entry;
the address book is shared mutable state so ephemeral ports chosen by
``listen`` become visible to every transport built over the same book.

While any transport is alive, ``Message.size_bytes`` reports exact
frame sizes (see :mod:`repro.net.frame`), so traffic accounting equals
bytes on the socket for hot and cold types alike.
"""

from __future__ import annotations

import asyncio
import logging
from collections import deque
from typing import Callable, Deque, Dict, List, Tuple

from repro.net import frame
from repro.net.message import Message
from repro.net.sim import NetworkStats
from repro.net.transport import MessageHandler, Transport

logger = logging.getLogger(__name__)

#: Give a peer this many wall seconds to accept before dropping.
CONNECT_TIMEOUT = 2.0

Address = Tuple[str, int]


class ServiceConnection:
    """Lazy outbound stream to one peer, with datagram drop semantics.

    A single pump task drains the frame queue through one connection;
    connect or write failure drops everything queued (the peer is
    treated as dead, like a crashed sim node) and the next ``enqueue``
    starts a fresh connection attempt.  ``close`` detaches cleanly:
    frames enqueued afterwards drop silently.
    """

    def __init__(self, transport: "TcpTransport", dst: int) -> None:
        self.transport = transport
        self.dst = dst
        self.closed = False
        self._queue: Deque[bytes] = deque()
        self._wakeup = asyncio.Event()
        self._writer: asyncio.StreamWriter | None = None
        self._task = transport.loop.create_task(self._pump())

    @property
    def queued(self) -> int:
        return len(self._queue)

    def enqueue(self, data: bytes) -> None:
        if self.closed:
            self.transport.stats.messages_dropped += 1
            return
        self._queue.append(data)
        self._wakeup.set()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._wakeup.set()
        self._task.cancel()
        self._drop_queued()
        self._reset_writer()

    def _drop_queued(self) -> None:
        if self._queue:
            self.transport.stats.messages_dropped += len(self._queue)
            self._queue.clear()

    def _reset_writer(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except RuntimeError:
                pass   # loop already closed during interpreter teardown
            self._writer = None

    async def _pump(self) -> None:
        while not self.closed:
            if not self._queue:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            try:
                if self._writer is None:
                    host, port = self.transport.addresses[self.dst]
                    _reader, self._writer = await asyncio.wait_for(
                        asyncio.open_connection(host, port),
                        CONNECT_TIMEOUT,
                    )
                while self._queue:
                    self._writer.write(self._queue.popleft())
                await self._writer.drain()
            except asyncio.CancelledError:
                raise
            except (OSError, asyncio.TimeoutError, KeyError):
                # Unreachable peer: everything queued for it is lost,
                # like datagrams into a crashed node.  The queue is
                # left empty so the next send retries from scratch.
                self._drop_queued()
                self._reset_writer()


class TcpTransport(Transport):
    """Frames the binary codec (pickle fallback) over asyncio streams."""

    def __init__(self, addresses: Dict[int, Address],
                 loop: asyncio.AbstractEventLoop) -> None:
        #: node id -> (host, port); shared and mutated by ``listen``.
        self.addresses = addresses
        self.loop = loop
        self.stats = NetworkStats()
        self._handlers: Dict[int, MessageHandler] = {}
        self._servers: Dict[int, asyncio.AbstractServer] = {}
        self._connections: Dict[int, ServiceConnection] = {}
        self._taps: List[MessageHandler] = []
        self._delivery_taps: List[MessageHandler] = []
        #: live server-side reader task -> its stream writer
        self._readers: Dict[asyncio.Task, asyncio.StreamWriter] = {}
        self._closed = False
        frame.install_exact_sizes()

    # --- Server side -----------------------------------------------------

    async def listen(self, node_id: int) -> int:
        """Accept frames for ``node_id`` at its address-book entry.

        Binds the configured (host, port); with port 0 the kernel
        picks one, and the book entry is updated so peers sharing the
        book can reach it.  Returns the bound port.
        """
        host, port = self.addresses.get(node_id, ("127.0.0.1", 0))
        server = await asyncio.start_server(self._serve_stream, host, port)
        bound = server.sockets[0].getsockname()[1]
        self.addresses[node_id] = (host, bound)
        self._servers[node_id] = server
        return bound

    async def _serve_stream(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._readers[task] = writer
            task.add_done_callback(lambda t: self._readers.pop(t, None))
        try:
            while True:
                prefix = await reader.readexactly(frame.LENGTH_PREFIX.size)
                (length,) = frame.LENGTH_PREFIX.unpack(prefix)
                if not 0 < length <= frame.MAX_FRAME_BYTES:
                    raise ValueError(f"bad frame length {length}")
                body = await reader.readexactly(length)
                self._dispatch(frame.decode_body(body))
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass   # peer went away; streams have no goodbye handshake
        except ValueError:
            logger.warning("dropping connection after a corrupt frame")
        finally:
            try:
                writer.close()
            except RuntimeError:
                pass   # loop already closed during interpreter teardown

    def _dispatch(self, message: Message) -> None:
        handler = self._handlers.get(message.dst)
        if handler is None:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        for tap in self._delivery_taps:
            tap(message)
        try:
            handler(message)
        except Exception:
            # Handler isolation, as in the sim: one poisoned message
            # must not kill the reader for the whole connection.
            logger.exception(
                "handler for %s failed on node %d",
                message.msg_type.value, message.dst,
            )

    # --- Transport interface ---------------------------------------------

    def attach(self, node_id: int, handler: MessageHandler) -> None:
        self._handlers[node_id] = handler

    def detach(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)
        server = self._servers.pop(node_id, None)
        if server is not None:
            server.close()

    def node_ids(self) -> List[int]:
        """All peers in the address book (the deployment membership,
        not just locally attached daemons)."""
        return sorted(self.addresses)

    def send(self, message: Message) -> None:
        if self._closed:
            return
        data = frame.encode_frame(message)
        self.stats.record_send(message, len(data))
        for tap in self._taps:
            tap(message)
        if message.dst in self._handlers:
            # Local destination: loop back through the event loop
            # (delivery stays asynchronous, as over a wire) without
            # paying for a socket to ourselves.
            self.loop.call_soon(self._dispatch, message)
            return
        if message.dst not in self.addresses:
            self.stats.messages_dropped += 1
            return
        connection = self._connections.get(message.dst)
        if connection is None or connection.closed:
            connection = ServiceConnection(self, message.dst)
            self._connections[message.dst] = connection
        connection.enqueue(data)

    # --- Observation (same hooks as the simulator) ------------------------

    def tap(self, handler: MessageHandler) -> None:
        self._taps.append(handler)

    def tap_delivery(self, handler: MessageHandler) -> None:
        self._delivery_taps.append(handler)

    # --- Lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for connection in self._connections.values():
            connection.close()
        self._connections.clear()
        for server in self._servers.values():
            server.close()
        self._servers.clear()
        # Close inbound connections rather than cancelling their reader
        # tasks: the readers see EOF and exit through their normal
        # peer-went-away path.
        for writer in list(self._readers.values()):
            try:
                writer.close()
            except RuntimeError:
                pass   # loop already closed during interpreter teardown
        self._handlers.clear()
        frame.uninstall_exact_sizes()

    async def aclose(self) -> None:
        """Close and wait for sockets and reader tasks to release."""
        servers = list(self._servers.values())
        readers = list(self._readers.keys())
        self.close()
        for server in servers:
            try:
                await server.wait_closed()
            except Exception:
                logger.debug("server close raced with shutdown",
                             exc_info=True)
        if readers:
            await asyncio.gather(*readers, return_exceptions=True)
