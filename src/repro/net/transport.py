"""Abstract transport interface.

The paper states (Section 5) that only Khazana's messaging layer is
system dependent.  Daemons talk to a :class:`Transport`; the simulator
(:mod:`repro.net.sim`) is the reference implementation, and a real
socket transport could be substituted without touching protocol code.
"""

from __future__ import annotations

import abc
from typing import Callable, List

from repro.net.message import Message

MessageHandler = Callable[[Message], None]


class Transport(abc.ABC):
    """Delivers messages between numbered nodes."""

    @abc.abstractmethod
    def attach(self, node_id: int, handler: MessageHandler) -> None:
        """Register ``handler`` to receive messages addressed to
        ``node_id``.  A node must attach before it can send or
        receive."""

    @abc.abstractmethod
    def detach(self, node_id: int) -> None:
        """Remove the node; subsequent messages to it are dropped."""

    @abc.abstractmethod
    def send(self, message: Message) -> None:
        """Queue ``message`` for delivery to ``message.dst``.

        Delivery is asynchronous and unreliable: messages to dead,
        detached, or partitioned nodes vanish silently, exactly like a
        datagram.  Reliability (timeout + retry) belongs to the RPC
        layer above.
        """

    @abc.abstractmethod
    def node_ids(self) -> List[int]:
        """Currently attached node ids, in ascending order."""
