"""Deterministic discrete-event network simulator.

Stands in for the socket layer of the original Khazana prototype.  The
simulator models:

- per-link latency (constant base + per-byte transfer + optional
  jitter drawn from a seeded RNG, so runs stay reproducible),
- message loss probability per link,
- network partitions (bidirectional blackholes between node groups),
- node crashes (messages to/from a crashed node are dropped).

Topology presets correspond to the environments the paper targets:
``lan`` (the single-cluster prototype), ``wan`` (the slow/intermittent
wide-area links Section 1 assumes), and ``two_cluster`` (a LAN pair
joined by a WAN link, the shape of the planned multi-cluster design).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.net.clock import EventScheduler
from repro.net.codec import install as _install_size_codec
from repro.net.message import Message, MessageType
from repro.net.transport import MessageHandler, Transport

# Every simulated deployment accounts hot-type traffic at its exact
# binary-codec size; installed here (not in message.py) to keep the
# message/codec dependency one-way.
_install_size_codec()

# Latency presets, in virtual seconds.
LAN_LATENCY = 0.0005      # 0.5 ms, a late-90s switched Ethernet
WAN_LATENCY = 0.040       # 40 ms, a wide-area round-trip half
LAN_BANDWIDTH = 12_500_000   # 100 Mbit/s in bytes/sec
WAN_BANDWIDTH = 187_500      # 1.5 Mbit/s (T1) in bytes/sec


@dataclass(frozen=True)
class LinkSpec:
    """Latency/loss model for one directed pair of nodes."""

    base_latency: float = LAN_LATENCY
    bandwidth: float = LAN_BANDWIDTH   # bytes per virtual second
    jitter: float = 0.0                # max uniform extra latency
    loss_probability: float = 0.0

    def delivery_delay(self, size_bytes: int, rng: random.Random) -> float:
        delay = self.base_latency + size_bytes / self.bandwidth
        if self.jitter > 0:
            delay += rng.uniform(0.0, self.jitter)
        return delay


class Topology:
    """Maps node pairs to :class:`LinkSpec`.

    A default link applies to every pair unless overridden.  Cluster
    membership can be declared so that intra-cluster pairs use the LAN
    link and inter-cluster pairs the WAN link.
    """

    def __init__(self, default: Optional[LinkSpec] = None) -> None:
        self.default = default if default is not None else LinkSpec()
        self._overrides: Dict[Tuple[int, int], LinkSpec] = {}
        self._clusters: Dict[int, int] = {}   # node id -> cluster id
        self._intra: LinkSpec = LinkSpec()
        self._inter: LinkSpec = LinkSpec(
            base_latency=WAN_LATENCY, bandwidth=WAN_BANDWIDTH
        )
        self._clustered = False

    @classmethod
    def lan(cls, jitter: float = 0.0, loss: float = 0.0) -> "Topology":
        """All pairs on a local-area link."""
        return cls(
            LinkSpec(
                base_latency=LAN_LATENCY,
                bandwidth=LAN_BANDWIDTH,
                jitter=jitter,
                loss_probability=loss,
            )
        )

    @classmethod
    def wan(cls, jitter: float = 0.0, loss: float = 0.0) -> "Topology":
        """All pairs on a wide-area link."""
        return cls(
            LinkSpec(
                base_latency=WAN_LATENCY,
                bandwidth=WAN_BANDWIDTH,
                jitter=jitter,
                loss_probability=loss,
            )
        )

    @classmethod
    def clustered(
        cls,
        assignment: Dict[int, int],
        intra: Optional[LinkSpec] = None,
        inter: Optional[LinkSpec] = None,
    ) -> "Topology":
        """LAN inside each cluster, WAN between clusters.

        ``assignment`` maps node id -> cluster id.
        """
        topo = cls()
        topo._clustered = True
        topo._clusters = dict(assignment)
        if intra is not None:
            topo._intra = intra
        if inter is not None:
            topo._inter = inter
        return topo

    def set_link(self, a: int, b: int, spec: LinkSpec) -> None:
        """Override the link between ``a`` and ``b`` (both directions)."""
        self._overrides[(a, b)] = spec
        self._overrides[(b, a)] = spec

    def link(self, src: int, dst: int) -> LinkSpec:
        override = self._overrides.get((src, dst))
        if override is not None:
            return override
        if self._clustered:
            same = self._clusters.get(src) == self._clusters.get(dst)
            return self._intra if same else self._inter
        return self.default

    def cluster_of(self, node_id: int) -> int:
        """Cluster id of a node (0 for non-clustered topologies)."""
        return self._clusters.get(node_id, 0)


@dataclass
class NetworkStats:
    """Aggregate traffic counters, used by every benchmark."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    by_type: Dict[str, int] = field(default_factory=dict)
    bytes_by_type: Dict[str, int] = field(default_factory=dict)

    def record_send(self, message: Message, size: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += size
        key = message.msg_type.value
        self.by_type[key] = self.by_type.get(key, 0) + 1
        self.bytes_by_type[key] = self.bytes_by_type.get(key, 0) + size

    def snapshot(self) -> "NetworkStats":
        """A copy, for before/after differencing in benchmarks."""
        clone = NetworkStats(
            messages_sent=self.messages_sent,
            messages_delivered=self.messages_delivered,
            messages_dropped=self.messages_dropped,
            bytes_sent=self.bytes_sent,
        )
        clone.by_type = dict(self.by_type)
        clone.bytes_by_type = dict(self.bytes_by_type)
        return clone

    def delta_since(self, earlier: "NetworkStats") -> "NetworkStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        delta = NetworkStats(
            messages_sent=self.messages_sent - earlier.messages_sent,
            messages_delivered=self.messages_delivered - earlier.messages_delivered,
            messages_dropped=self.messages_dropped - earlier.messages_dropped,
            bytes_sent=self.bytes_sent - earlier.bytes_sent,
        )
        for key, value in self.by_type.items():
            diff = value - earlier.by_type.get(key, 0)
            if diff:
                delta.by_type[key] = diff
        for key, value in self.bytes_by_type.items():
            diff = value - earlier.bytes_by_type.get(key, 0)
            if diff:
                delta.bytes_by_type[key] = diff
        return delta

    def count(self, msg_type: MessageType) -> int:
        return self.by_type.get(msg_type.value, 0)


#: Folded into every per-link RNG seed.  An int tuple hash is stable
#: across processes (PYTHONHASHSEED only perturbs str/bytes).
_LINK_SALT = 3


class SimNetwork(Transport):
    """The simulated transport connecting all Khazana daemons."""

    def __init__(
        self,
        scheduler: EventScheduler,
        topology: Optional[Topology] = None,
        seed: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.topology = topology if topology is not None else Topology.lan()
        self.stats = NetworkStats()
        self._seed = seed
        # One RNG stream per directed link, seeded from (seed, src,
        # dst): loss/jitter draws on link A are unaffected by how much
        # traffic (or schedule reordering) link B sees.
        self._link_rngs: Dict[Tuple[int, int], random.Random] = {}
        self._send_counts: Dict[Tuple[str, int, int], int] = {}
        self._handlers: Dict[int, MessageHandler] = {}
        self._crashed: Set[int] = set()
        self._partitions: List[Tuple[Set[int], Set[int]]] = []
        self._taps: List[MessageHandler] = []
        self._delivery_taps: List[MessageHandler] = []

    # --- Transport interface -------------------------------------------------

    def attach(self, node_id: int, handler: MessageHandler) -> None:
        self._handlers[node_id] = handler
        self._crashed.discard(node_id)

    def detach(self, node_id: int) -> None:
        self._handlers.pop(node_id, None)

    def node_ids(self) -> List[int]:
        return sorted(self._handlers)

    def send(self, message: Message) -> None:
        size = message.size_bytes()
        self.stats.record_send(message, size)
        for tap in self._taps:
            tap(message)
        if not self._deliverable(message.src, message.dst):
            self.stats.messages_dropped += 1
            return
        rng = self._link_rng(message.src, message.dst)
        link = self.topology.link(message.src, message.dst)
        if link.loss_probability > 0 and rng.random() < link.loss_probability:
            self.stats.messages_dropped += 1
            return
        delay = link.delivery_delay(size, rng)
        self.scheduler.call_later(
            delay, lambda: self._deliver(message),
            label=self._delivery_label(message),
        )

    def _link_rng(self, src: int, dst: int) -> random.Random:
        rng = self._link_rngs.get((src, dst))
        if rng is None:
            # Explicit integer mix — random.Random rejects tuple seeds.
            rng = random.Random(hash((self._seed, src, dst, _LINK_SALT)))
            self._link_rngs[(src, dst)] = rng
        return rng

    def _delivery_label(self, message: Message) -> str:
        """Stable identity for a delivery event.

        Deterministic across re-runs of one cluster build (request ids
        are per-endpoint counters; the ``#k`` suffix is this network's
        own per-(type, link) occurrence counter), so the schedule
        explorer can key decisions and sleep sets on it.  The global
        ``Message.msg_id`` is deliberately *not* used: that counter
        survives across clusters in one process.
        """
        key = (message.msg_type.value, message.src, message.dst)
        count = self._send_counts.get(key, 0)
        self._send_counts[key] = count + 1
        label = (
            f"deliver:{message.msg_type.value}"
            f":{message.src}->{message.dst}#{count}"
        )
        if message.request_id is not None:
            label += f":r{message.request_id}"
        elif message.reply_to is not None:
            label += f":a{message.reply_to}"
        return label

    # --- Fault injection ------------------------------------------------------

    def crash(self, node_id: int) -> None:
        """Crash a node: in-flight and future messages to/from it drop."""
        self._crashed.add(node_id)

    def recover(self, node_id: int) -> None:
        """Let a previously crashed node communicate again."""
        self._crashed.discard(node_id)

    def is_crashed(self, node_id: int) -> bool:
        return node_id in self._crashed

    def partition(self, group_a: Set[int], group_b: Set[int]) -> None:
        """Blackhole all traffic between the two node groups."""
        self._partitions.append((set(group_a), set(group_b)))

    def heal_partitions(self) -> None:
        self._partitions.clear()

    def tap(self, handler: MessageHandler) -> None:
        """Observe every sent message (for tracing and benchmarks)."""
        self._taps.append(handler)

    def tap_delivery(self, handler: MessageHandler) -> None:
        """Observe every *delivered* message, after loss/crash/partition
        filtering — the receive-side counterpart of :meth:`tap`, used
        by the race detector to order events (happens-before)."""
        self._delivery_taps.append(handler)

    # --- Internals -------------------------------------------------------------

    def _deliverable(self, src: int, dst: int) -> bool:
        if src in self._crashed or dst in self._crashed:
            return False
        for group_a, group_b in self._partitions:
            if (src in group_a and dst in group_b) or (
                src in group_b and dst in group_a
            ):
                return False
        return True

    def _deliver(self, message: Message) -> None:
        # Re-check at delivery time: a crash or partition that happened
        # while the message was in flight still destroys it.
        if not self._deliverable(message.src, message.dst):
            self.stats.messages_dropped += 1
            return
        handler = self._handlers.get(message.dst)
        if handler is None:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        for tap in self._delivery_taps:
            tap(message)
        handler(message)
