"""The runtime seam: clock + timers + transport behind one interface.

The paper claims (Section 5) that only Khazana's messaging layer is
system-dependent.  This module makes that claim structural: everything
a :class:`~repro.core.kernel.NodeKernel` (and therefore the protocol
engine and every consistency manager) needs from "the system" is the
narrow :class:`Runtime` surface below — a monotonic clock, one-shot
timers, and a :class:`~repro.net.transport.Transport`.

Two backends implement it:

- :class:`SimRuntime` wraps the discrete-event
  :class:`~repro.net.clock.EventScheduler` and
  :class:`~repro.net.sim.SimNetwork`.  It adds no events and no
  indirection state of its own, so simulated runs — including the
  schedule explorer and the race detector, which keep driving the raw
  scheduler — stay bit-for-bit identical to the pre-seam behaviour.
- :class:`~repro.net.aio.AsyncioRuntime` drives the same protocol
  code over wall-clock asyncio timers and the real-socket
  :class:`~repro.net.tcp.TcpTransport`.

Everything above this seam is backend-agnostic; lint rule KHZ011
(``repro.analysis.lint``) enforces that no other module reaches for
``time.time``/``asyncio``/``socket`` directly.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Protocol, runtime_checkable

from repro.net.clock import EventScheduler
from repro.net.transport import Transport


@runtime_checkable
class TimerHandle(Protocol):
    """What a scheduled-callback handle looks like on any backend.

    Mirrors :class:`~repro.net.clock.EventHandle` — the pre-existing
    timer vocabulary of the RPC layer and the failure detector — so
    those modules run unchanged over either backend.
    """

    def cancel(self) -> None: ...

    @property
    def cancelled(self) -> bool: ...

    @property
    def when(self) -> float: ...

    @property
    def label(self) -> str: ...


class Runtime(abc.ABC):
    """Clock, one-shot timers, and the transport, for one backend.

    The timer surface is deliberately identical to
    :class:`~repro.net.clock.EventScheduler` (``now`` / ``call_at`` /
    ``call_later`` / ``call_soon`` returning a cancellable handle), so
    code written against a scheduler accepts a runtime and vice versa.
    """

    #: Backend name ("sim" or "asyncio"), for logs and reports.
    name: str = "?"
    #: The messaging backend all daemons on this runtime share.
    transport: Transport

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds (virtual or wall-clock monotonic)."""

    @abc.abstractmethod
    def call_at(self, when: float, callback: Callable[[], None],
                label: str = "") -> TimerHandle:
        """Run ``callback`` once at absolute time ``when``."""

    @abc.abstractmethod
    def call_later(self, delay: float, callback: Callable[[], None],
                   label: str = "") -> TimerHandle:
        """Run ``callback`` once, ``delay`` seconds from now."""

    @abc.abstractmethod
    def call_soon(self, callback: Callable[[], None],
                  label: str = "") -> TimerHandle:
        """Run ``callback`` as soon as the backend next dispatches."""

    @property
    def timers(self) -> object:
        """The raw timer object for tools that need the backend itself.

        The sim backend returns its :class:`EventScheduler` (the
        explorer and the sync client driver step it directly); the
        asyncio backend returns the runtime, whose timer surface is
        the same.
        """
        return self

    def node_ids(self) -> List[int]:
        return self.transport.node_ids()


class SimRuntime(Runtime):
    """The discrete-event backend: virtual time over a simulated net.

    A pure delegation shim — scheduling through it produces exactly
    the events (same ``(when, seq)`` order, same labels) that
    scheduling on the wrapped :class:`EventScheduler` would, which is
    what keeps the virtual-time benchmarks bit-identical and the
    schedule explorer's chooser hooks effective.
    """

    name = "sim"

    def __init__(self, scheduler: EventScheduler,
                 transport: Transport) -> None:
        self.scheduler = scheduler
        self.transport = transport

    @property
    def now(self) -> float:
        return self.scheduler.now

    def call_at(self, when: float, callback: Callable[[], None],
                label: str = "") -> TimerHandle:
        return self.scheduler.call_at(when, callback, label=label)

    def call_later(self, delay: float, callback: Callable[[], None],
                   label: str = "") -> TimerHandle:
        return self.scheduler.call_later(delay, callback, label=label)

    def call_soon(self, callback: Callable[[], None],
                  label: str = "") -> TimerHandle:
        return self.scheduler.call_soon(callback, label=label)

    @property
    def timers(self) -> EventScheduler:
        return self.scheduler
