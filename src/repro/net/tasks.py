"""Futures and generator-based tasklets for protocol code.

Khazana daemons are peers that service multi-step protocols (Figure 2
of the paper shows a 13-step lock-and-fetch exchange).  Writing such
protocols as explicit state machines obscures them; instead, daemon
operations are written as plain Python generators that ``yield``
:class:`Future` objects wherever the original daemon would block on a
remote reply.  :class:`TaskRunner` resumes a generator when the future
it is waiting on resolves, so protocol code reads sequentially while
executing event-driven under the simulator.
"""

from __future__ import annotations

import logging
from typing import Any, Callable, Generator, List, Optional

log = logging.getLogger("repro.net.tasks")

ProtocolTask = Generator["Future", Any, Any]


class FutureError(Exception):
    """Misuse of a Future (double-resolve, premature result access)."""


class Future:
    """A one-shot container for a result or an exception.

    Unlike asyncio futures these are scheduler-agnostic: callbacks run
    synchronously when the future resolves, which keeps the simulation
    deterministic.
    """

    __slots__ = ("_done", "_result", "_exception", "_callbacks", "label")

    def __init__(self, label: str = "") -> None:
        self._done = False
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future"], None]] = []
        self.label = label

    @property
    def done(self) -> bool:
        return self._done

    @property
    def failed(self) -> bool:
        return self._done and self._exception is not None

    def set_result(self, result: Any = None) -> None:
        if self._done:
            raise FutureError(f"future {self.label!r} already resolved")
        self._done = True
        self._result = result
        self._fire()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            raise FutureError(f"future {self.label!r} already resolved")
        self._done = True
        self._exception = exc
        self._fire()

    def result(self) -> Any:
        if not self._done:
            raise FutureError(f"future {self.label!r} not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> Optional[BaseException]:
        if not self._done:
            raise FutureError(f"future {self.label!r} not resolved yet")
        return self._exception

    def add_callback(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` when resolved (immediately if already)."""
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire(self) -> None:
        """Run every waiter callback, isolating their failures.

        A raising callback must not abort the remaining ones: each of
        the others typically resumes a *different* suspended task, and
        skipping them would strand those waiters forever.  Every
        callback runs; failures are logged with the waiter they strand
        and re-raised (aggregated) once all waiters have been resumed.
        """
        callbacks, self._callbacks = self._callbacks, []
        errors: List[BaseException] = []
        for index, callback in enumerate(callbacks):
            try:
                callback(self)
            except BaseException as error:  # noqa: BLE001 - isolate waiters
                errors.append(error)
                log.error(
                    "callback on future %r raised %r; its waiter is "
                    "stranded (%d later callback(s) still run)",
                    self.label, error, len(callbacks) - index - 1,
                )
        if not errors:
            return
        if len(errors) == 1:
            raise errors[0]
        raise BaseExceptionGroup(
            f"{len(errors)} callbacks on future {self.label!r} raised",
            errors,
        )

    def __repr__(self) -> str:
        state = "pending"
        if self._done:
            state = "failed" if self._exception is not None else "done"
        return f"<Future {self.label!r} {state}>"


def resolved(value: Any = None, label: str = "") -> Future:
    """A future already resolved with ``value``."""
    future = Future(label)
    future.set_result(value)
    return future


def failed(exc: BaseException, label: str = "") -> Future:
    """A future already resolved with exception ``exc``."""
    future = Future(label)
    future.set_exception(exc)
    return future


def gather(futures: List[Future], label: str = "gather") -> Future:
    """A future resolving to the list of results of ``futures``.

    Fails with the first exception encountered (remaining results are
    discarded), matching the all-or-nothing semantics Khazana uses when
    it must contact every replica of a page.
    """
    combined = Future(label)
    remaining = len(futures)
    if remaining == 0:
        combined.set_result([])
        return combined
    results: List[Any] = [None] * remaining

    def on_done(index: int, future: Future) -> None:
        nonlocal remaining
        if combined.done:
            # First failure already won; later exceptions would vanish
            # silently, so at least leave them in the log.
            late = future.exception()
            if late is not None:
                log.warning(
                    "gather %r already failed; dropping exception %r "
                    "from %r", combined.label, late, future.label,
                )
            return
        exc = future.exception()
        if exc is not None:
            combined.set_exception(exc)
            return
        results[index] = future.result()
        remaining -= 1
        if remaining == 0:
            combined.set_result(results)

    for i, future in enumerate(futures):
        future.add_callback(lambda f, i=i: on_done(i, f))
    return combined


def gather_settled(futures: List[Future], label: str = "settled") -> Future:
    """A future resolving to [(ok, value-or-exc), ...] — never fails.

    Used where Khazana tolerates partial failure, e.g. pushing updates
    to replicas where unreachable nodes are simply retried later.
    """
    combined = Future(label)
    remaining = len(futures)
    if remaining == 0:
        combined.set_result([])
        return combined
    results: List[Any] = [None] * remaining

    def on_done(index: int, future: Future) -> None:
        nonlocal remaining
        exc = future.exception()
        results[index] = (False, exc) if exc is not None else (True, future.result())
        remaining -= 1
        if remaining == 0:
            combined.set_result(results)

    for i, future in enumerate(futures):
        future.add_callback(lambda f, i=i: on_done(i, f))
    return combined


class TaskRunner:
    """Drives protocol generators to completion.

    ``spawn`` starts a generator-based task.  Whenever the task yields
    a :class:`Future`, it is suspended until that future resolves; the
    future's result is sent back into the generator (or the exception
    thrown into it, so protocol code can use ordinary try/except).
    The value a task ``return``s resolves the future ``spawn`` handed
    back.
    """

    def __init__(self) -> None:
        self._active = 0
        #: Label of the task whose generator frame is currently being
        #: resumed — a stable identity for controllers/observers that
        #: need to know *who* is running ("" between resumptions).
        self.current_label: str = ""
        #: Schedule-exploration hook: called with ``(filename, lineno,
        #: task_label)`` for every generator frame suspended at a yield
        #: point, each time a task parks on a Future.  Drives the
        #: yield-point coverage report of ``repro.analysis.explore``.
        self.yield_observer: Optional[Callable[[str, int, str], None]] = None

    @property
    def active(self) -> int:
        """Number of tasks currently suspended or running."""
        return self._active

    def spawn(self, task: ProtocolTask, label: str = "task") -> Future:
        outcome = Future(label)
        self._active += 1
        self._step(task, outcome, first=True, value=None, exc=None)
        return outcome

    def _resume(
        self,
        task: ProtocolTask,
        label: str,
        first: bool,
        value: Any,
        exc: Optional[BaseException],
    ) -> Any:
        prev, self.current_label = self.current_label, label
        try:
            if first:
                return next(task)
            if exc is not None:
                return task.throw(exc)
            return task.send(value)
        finally:
            self.current_label = prev

    def _observe_suspension(self, task: ProtocolTask, label: str) -> None:
        """Report every frame in the (yield from) chain now suspended."""
        assert self.yield_observer is not None
        gen: Any = task
        while gen is not None:
            frame = getattr(gen, "gi_frame", None)
            code = getattr(gen, "gi_code", None)
            if frame is not None and code is not None:
                self.yield_observer(code.co_filename, frame.f_lineno, label)
            gen = getattr(gen, "gi_yieldfrom", None)

    def _step(
        self,
        task: ProtocolTask,
        outcome: Future,
        first: bool,
        value: Any,
        exc: Optional[BaseException],
    ) -> None:
        try:
            waited = self._resume(task, outcome.label, first, value, exc)
        except StopIteration as stop:
            self._active -= 1
            outcome.set_result(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate via future
            self._active -= 1
            outcome.set_exception(error)
            return
        if not isinstance(waited, Future):
            self._active -= 1
            outcome.set_exception(
                TypeError(
                    f"task {outcome.label!r} yielded {type(waited).__name__}, "
                    "expected Future"
                )
            )
            return
        if self.yield_observer is not None:
            self._observe_suspension(task, outcome.label)
        waited.add_callback(
            lambda f: self._step(
                task, outcome, first=False,
                value=None if f.exception() is not None else f.result(),
                exc=f.exception(),
            )
        )
