"""The wall-clock backend: asyncio timers driving unchanged protocol code.

`AsyncioRuntime` implements the :class:`~repro.net.runtime.Runtime`
seam over a real event loop.  Protocol tasklets (generators yielding
:class:`~repro.net.tasks.Future`) need nothing from it beyond one-shot
timers and a transport — their futures fire callbacks synchronously in
whatever context resolves them, which under asyncio means inside loop
callbacks and socket-reader tasks.  The whole node therefore stays
single-threaded, exactly like the simulator; concurrency comes from
the loop interleaving I/O, never from threads.

`AsyncioDriver` is the client-side counterpart of
:class:`~repro.core.client.SyncDriver`: it blocks the calling (main)
thread by running the loop until the operation's future resolves, so
:class:`~repro.core.client.KhazanaSession` works unmodified over real
sockets.

This module is one of the two system-dependent runtime modules (the
other is :mod:`repro.net.tcp`); lint rule KHZ011 keeps direct
``asyncio``/``time``/``socket`` use fenced in here.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Callable, Optional

from repro.net.runtime import Runtime
from repro.net.tasks import Future
from repro.net.transport import Transport

logger = logging.getLogger(__name__)


class AioTimerHandle:
    """Asyncio-backed timer with the :class:`EventHandle` vocabulary."""

    __slots__ = ("_handle", "_when", "_label", "_cancelled")

    def __init__(self, handle: asyncio.TimerHandle | asyncio.Handle,
                 when: float, label: str) -> None:
        self._handle = handle
        self._when = when
        self._label = label
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def when(self) -> float:
        return self._when

    @property
    def label(self) -> str:
        return self._label


class AsyncioRuntime(Runtime):
    """Wall-clock timers + a real transport on one asyncio loop."""

    name = "asyncio"

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None,
                 transport: Optional[Transport] = None) -> None:
        self.loop = loop if loop is not None else asyncio.new_event_loop()
        if transport is not None:
            self.transport = transport

    # --- Runtime timer surface -----------------------------------------

    @property
    def now(self) -> float:
        """Monotonic loop time, in seconds (not epoch time)."""
        return self.loop.time()

    def _guarded(self, callback: Callable[[], None],
                 label: str) -> Callable[[], None]:
        def run() -> None:
            try:
                callback()
            except Exception:
                # Mirror the simulator's stance: one bad callback must
                # not take the node's dispatch loop down with it.
                logger.exception("timer callback %r failed", label)
        return run

    def call_at(self, when: float, callback: Callable[[], None],
                label: str = "") -> AioTimerHandle:
        handle = self.loop.call_at(when, self._guarded(callback, label))
        return AioTimerHandle(handle, when, label)

    def call_later(self, delay: float, callback: Callable[[], None],
                   label: str = "") -> AioTimerHandle:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(self.now + delay, callback, label=label)

    def call_soon(self, callback: Callable[[], None],
                  label: str = "") -> AioTimerHandle:
        handle = self.loop.call_soon(self._guarded(callback, label))
        return AioTimerHandle(handle, self.now, label)

    # --- Driving the loop ----------------------------------------------

    def run_future(self, future: Future, timeout: Optional[float] = None
                   ) -> Any:
        """Run the loop until ``future`` resolves; return its result.

        The synchronous-client bridge: a protocol future is mirrored
        into an asyncio future, and the loop runs (dispatching socket
        reads and timers, which is what makes progress happen) until
        the mirror fires.  Raises ``TimeoutError`` after ``timeout``
        wall seconds.
        """
        mirror = self.loop.create_future()

        def on_done(done: Future) -> None:
            if mirror.done():
                return
            exc = done.exception()
            if exc is not None:
                mirror.set_exception(exc)
            else:
                mirror.set_result(done.result())

        future.add_callback(on_done)
        waiter = mirror if timeout is None else self._with_deadline(
            mirror, timeout
        )
        return self.loop.run_until_complete(waiter)

    async def _with_deadline(self, mirror: "asyncio.Future[Any]",
                             timeout: float) -> Any:
        try:
            return await asyncio.wait_for(mirror, timeout)
        except asyncio.TimeoutError:
            raise TimeoutError(
                f"operation did not complete within {timeout}s of wall time"
            ) from None

    def run_forever(self) -> None:
        """Serve until something calls :meth:`stop` (daemon processes)."""
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def stop(self) -> None:
        self.loop.call_soon(self.loop.stop)

    def close(self) -> None:
        self.loop.close()


class AsyncioDriver:
    """Blocking client driver over an :class:`AsyncioRuntime`.

    Substitutes for :class:`~repro.core.client.SyncDriver` when a
    session's daemon runs on the asyncio backend; ``timeout`` bounds
    every individual operation in wall seconds.
    """

    def __init__(self, runtime: AsyncioRuntime,
                 timeout: Optional[float] = 30.0) -> None:
        self.runtime = runtime
        self.timeout = timeout

    def wait(self, future: Future) -> Any:
        return self.runtime.run_future(future, timeout=self.timeout)
