"""Request/response layer over the unreliable transport.

The paper's failure model (Section 3.5): "Khazana operations are
repeatedly tried on all known Khazana nodes until they succeed or
timeout."  This module supplies the mechanics — request ids, response
matching, per-request timeouts, and bounded retransmission — on top of
the datagram-like :class:`~repro.net.transport.Transport`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.net.clock import EventHandle, EventScheduler
from repro.net.message import Message, MessageType
from repro.net.tasks import Future
from repro.net.transport import Transport


class RpcTimeout(Exception):
    """A request exhausted its retransmissions without a response."""

    def __init__(self, message: Message, attempts: int) -> None:
        super().__init__(
            f"no response from node {message.dst} to "
            f"{message.msg_type.value} after {attempts} attempt(s)"
        )
        self.request = message
        self.attempts = attempts


class RemoteError(Exception):
    """The peer answered with a ``MessageType.ERROR`` NAK."""

    def __init__(self, code: str, detail: str = "") -> None:
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail


@dataclass(frozen=True)
class RetryPolicy:
    """Retransmission schedule for one logical request."""

    timeout: float = 0.25          # seconds before first retransmission
    retries: int = 3               # retransmissions after the first send
    backoff: float = 2.0           # multiplier per attempt

    def attempt_timeout(self, attempt: int) -> float:
        return self.timeout * (self.backoff ** attempt)


#: Default policy: ~0.25s, 0.5s, 1s, 2s — bounded at roughly 4 seconds,
#: after which the caller decides whether to try another node.
DEFAULT_POLICY = RetryPolicy()


class _Pending:
    __slots__ = ("future", "message", "policy", "attempt", "timer")

    def __init__(self, future: Future, message: Message, policy: RetryPolicy):
        self.future = future
        self.message = message
        self.policy = policy
        self.attempt = 0
        self.timer: Optional[EventHandle] = None


class RpcEndpoint:
    """Per-node messaging endpoint.

    Dispatches unsolicited messages to a handler registered per message
    type, and matches replies to outstanding requests.  Owned by a
    :class:`~repro.core.daemon.KhazanaDaemon`.
    """

    def __init__(
        self,
        node_id: int,
        transport: Transport,
        scheduler: EventScheduler,
        policy: RetryPolicy = DEFAULT_POLICY,
    ) -> None:
        self.node_id = node_id
        self.transport = transport
        self.scheduler = scheduler
        self.policy = policy
        self._request_ids = itertools.count(1)
        self._pending: Dict[int, _Pending] = {}
        self._handlers: Dict[MessageType, Callable[[Message], None]] = {}
        self._alive = True
        transport.attach(node_id, self._on_message)

    # --- Registration -----------------------------------------------------

    def on(self, msg_type: MessageType, handler: Callable[[Message], None]) -> None:
        """Register the handler for unsolicited messages of a type."""
        self._handlers[msg_type] = handler

    def shutdown(self) -> None:
        """Detach from the transport and fail all outstanding requests."""
        self._alive = False
        self.transport.detach(self.node_id)
        for pending in list(self._pending.values()):
            self._cancel_timer(pending)
            if not pending.future.done:
                pending.future.set_exception(
                    RpcTimeout(pending.message, pending.attempt + 1)
                )
        self._pending.clear()

    # --- Sending ------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Fire-and-forget (used for replies and gossip-style hints)."""
        if self._alive:
            self.transport.send(message)

    def request(
        self,
        dst: int,
        msg_type: MessageType,
        payload: Optional[Dict[str, Any]] = None,
        policy: Optional[RetryPolicy] = None,
    ) -> Future:
        """Send a request and return a future for the reply payload.

        The future resolves with the response :class:`Message`; it
        fails with :class:`RemoteError` on a NAK or :class:`RpcTimeout`
        when retransmissions are exhausted.
        """
        message = Message(
            msg_type=msg_type,
            src=self.node_id,
            dst=dst,
            payload=payload or {},
            request_id=next(self._request_ids),
        )
        future = Future(label=f"rpc:{msg_type.value}->{dst}")
        pending = _Pending(future, message, policy or self.policy)
        self._pending[message.request_id] = pending
        self._transmit(pending)
        return future

    def reply(self, request: Message, msg_type: MessageType,
              payload: Optional[Dict[str, Any]] = None) -> None:
        """Answer ``request`` with a response of ``msg_type``."""
        self.send(request.reply(msg_type, payload))

    def reply_error(self, request: Message, code: str, detail: str = "") -> None:
        self.send(request.error_reply(code, detail))

    # --- Internals -----------------------------------------------------------

    def _transmit(self, pending: _Pending) -> None:
        if pending.future.done:
            return
        self.transport.send(pending.message)
        deadline = pending.policy.attempt_timeout(pending.attempt)
        pending.timer = self.scheduler.call_later(
            deadline, lambda: self._on_timeout(pending),
            label=(
                f"rpc-timeout:{pending.message.msg_type.value}"
                f":{pending.message.src}->{pending.message.dst}"
                f":r{pending.message.request_id}"
            ),
        )

    def _on_timeout(self, pending: _Pending) -> None:
        if pending.future.done:
            return
        pending.attempt += 1
        if pending.attempt > pending.policy.retries:
            self._pending.pop(pending.message.request_id, None)
            pending.future.set_exception(
                RpcTimeout(pending.message, pending.attempt)
            )
            return
        self._transmit(pending)

    def _cancel_timer(self, pending: _Pending) -> None:
        if pending.timer is not None:
            pending.timer.cancel()
            pending.timer = None

    def _on_message(self, message: Message) -> None:
        if message.reply_to is not None:
            pending = self._pending.pop(message.reply_to, None)
            if pending is None:
                return  # duplicate or late reply; drop
            self._cancel_timer(pending)
            if pending.future.done:
                return
            if message.msg_type is MessageType.ERROR:
                pending.future.set_exception(
                    RemoteError(
                        message.payload.get("code", "unknown"),
                        message.payload.get("detail", ""),
                    )
                )
            else:
                pending.future.set_result(message)
            return
        handler = self._handlers.get(message.msg_type)
        if handler is None:
            if message.request_id is not None:
                self.reply_error(message, "unhandled",
                                 f"node {self.node_id} has no handler for "
                                 f"{message.msg_type.value}")
            return
        handler(message)
