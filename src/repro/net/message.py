"""Message vocabulary for inter-daemon protocols.

All Khazana inter-node traffic — location lookups, address-space
grants, lock credential requests, page fetches, invalidations, update
propagation, and failure-detection pings — is carried by
:class:`Message` envelopes.  The vocabulary below covers every protocol
described in Section 3 of the paper.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_message_counter = itertools.count(1)


class MessageType(str, enum.Enum):
    """Every inter-daemon message kind used by Khazana protocols."""

    # --- Location management (paper Section 3.2) ---
    REGION_LOOKUP = "region_lookup"          # ask a node for a region descriptor
    REGION_LOOKUP_REPLY = "region_lookup_reply"
    CM_HINT_QUERY = "cm_hint_query"          # ask cluster manager: cached nearby?
    CM_HINT_REPLY = "cm_hint_reply"
    CM_HINT_UPDATE = "cm_hint_update"        # node -> cluster manager hint refresh

    # --- Address space management (paper Section 3.1) ---
    SPACE_REQUEST = "space_request"          # daemon -> cluster manager: chunk grant
    SPACE_GRANT = "space_grant"
    FREE_SPACE_REPORT = "free_space_report"  # daemon -> cluster manager hints

    # --- Region lifecycle ---
    DESCRIPTOR_FETCH = "descriptor_fetch"    # fetch region descriptor from home
    DESCRIPTOR_REPLY = "descriptor_reply"
    DESCRIPTOR_UPDATE = "descriptor_update"  # set-attributes propagation
    REGION_UNRESERVE = "region_unreserve"    # tell home a region is going away
    ALLOC_REQUEST = "alloc_request"          # allocate backing store at a node
    ALLOC_REPLY = "alloc_reply"
    FREE_REQUEST = "free_request"            # release backing store
    FREE_REPLY = "free_reply"

    # --- Consistency protocols (paper Section 3.3, Figure 2) ---
    LOCK_REQUEST = "lock_request"            # CM -> peer CM: credentials to grant
    LOCK_REPLY = "lock_reply"
    PAGE_FETCH = "page_fetch"                # fetch a copy of a page
    PAGE_DATA = "page_data"
    INVALIDATE = "invalidate"                # CREW: revoke cached copies
    INVALIDATE_ACK = "invalidate_ack"
    OWNER_TRANSFER = "owner_transfer"        # khz: allow-unhandled-message(reserved for explicit owner handoff; CREW currently transfers ownership inside LOCK_REPLY)
    UPDATE_PUSH = "update_push"              # release/eventual: propagate writes
    UPDATE_ACK = "update_ack"
    SHARER_REGISTER = "sharer_register"      # tell home node we cache a page
    SHARER_UNREGISTER = "sharer_unregister"  # eviction notice (may retry in bg)

    # --- Batched multi-page protocol operations.  One envelope carries
    # a list of pages bound for the same home node, collapsing the
    # per-page round-trips of a multi-page lock/unlock cycle into one
    # RPC per (home node, message kind).
    PAGE_FETCH_BATCH = "page_fetch_batch"    # fetch many read copies at once
    PAGE_DATA_BATCH = "page_data_batch"
    TOKEN_ACQUIRE_BATCH = "token_acquire_batch"  # many write grants at once
    TOKEN_GRANT_BATCH = "token_grant_batch"
    UPDATE_PUSH_BATCH = "update_push_batch"  # coalesced write-back at unlock
    UPDATE_ACK_BATCH = "update_ack_batch"

    # --- Replication & failure handling (paper Section 3.5) ---
    REPLICA_CREATE = "replica_create"        # push a replica for min-copies
    REPLICA_ACK = "replica_ack"
    REGION_MIGRATE = "region_migrate"        # move a region's primary home
    PING = "ping"
    PONG = "pong"

    # --- Hash-ring placement & membership (repro/core/placement) ---
    RING_QUERY = "ring_query"                # ask a bucket director for a descriptor
    RING_REPLY = "ring_reply"
    RING_PUBLISH = "ring_publish"            # home/cacher -> director record
    MEMBER_JOIN = "member_join"              # newcomer -> any member
    MEMBER_WELCOME = "member_welcome"        # member list back to the newcomer
    MEMBER_UPDATE = "member_update"          # gossip a join/leave delta

    # --- Application-level veneer traffic (e.g. the Section 4.2
    # object runtime's remote method invocations) ---
    APP_REQUEST = "app_request"
    APP_REPLY = "app_reply"

    # --- Generic ---
    ERROR = "error"                          # NAK carrying an error code


# Messages that answer a prior request; used by the RPC layer to match
# responses, and by the stats layer to classify traffic.
REPLY_TYPES = frozenset(
    {
        MessageType.REGION_LOOKUP_REPLY,
        MessageType.CM_HINT_REPLY,
        MessageType.SPACE_GRANT,
        MessageType.DESCRIPTOR_REPLY,
        MessageType.ALLOC_REPLY,
        MessageType.FREE_REPLY,
        MessageType.LOCK_REPLY,
        MessageType.PAGE_DATA,
        MessageType.INVALIDATE_ACK,
        MessageType.UPDATE_ACK,
        MessageType.PAGE_DATA_BATCH,
        MessageType.TOKEN_GRANT_BATCH,
        MessageType.UPDATE_ACK_BATCH,
        MessageType.REPLICA_ACK,
        MessageType.PONG,
        MessageType.RING_REPLY,
        MessageType.MEMBER_WELCOME,
        MessageType.APP_REPLY,
        MessageType.ERROR,
    }
)

# Fixed per-message envelope overhead used for traffic accounting, in
# bytes.  Roughly a UDP/IP header plus Khazana's own message header.
ENVELOPE_BYTES = 64

#: Optional exact-size hook installed by :mod:`repro.net.codec` (via
#: :mod:`repro.net.sim`).  Kept as a late-bound callable so this module
#: never imports the codec — the dependency stays one-way.
_size_codec = None


def set_size_codec(codec):
    """Install ``codec(message) -> Optional[int]`` as the size source.

    The hook returns the exact binary wire size for message types it
    covers and None for the rest, which keep the estimate below.
    Returns the previously installed hook (None if there was none) so
    a caller that swaps the hook temporarily — the TCP transport
    installs exact frame sizes for its lifetime — can restore it.
    """
    global _size_codec
    previous = _size_codec
    _size_codec = codec
    return previous


def _wire_size(value: Any) -> int:
    """Approximate serialized size of one payload value, recursively.

    Batch payloads are lists of dicts with embedded page ``bytes``;
    counting containers by element count alone would hide megabytes of
    page data from the bandwidth model, so containers recurse.
    """
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 8 + sum(_wire_size(item) for item in value)
    if isinstance(value, dict):
        return 8 + sum(
            len(str(key)) + _wire_size(item) for key, item in value.items()
        )
    return 8


@dataclass
class Message:
    """An envelope exchanged between Khazana daemons.

    ``payload`` holds protocol-specific fields; bulk page data travels
    under the ``"data"`` key as ``bytes`` and dominates the size
    accounting below.
    """

    msg_type: MessageType
    src: int
    dst: int
    payload: Dict[str, Any] = field(default_factory=dict)
    request_id: Optional[int] = None   # set by the RPC layer on requests
    reply_to: Optional[int] = None     # set on responses
    msg_id: int = field(default_factory=lambda: next(_message_counter))

    @property
    def is_reply(self) -> bool:
        return self.msg_type in REPLY_TYPES

    def size_bytes(self) -> int:
        """Wire size for bandwidth/latency accounting.

        Hot data-path types report their exact binary-codec length
        (see :mod:`repro.net.codec`); everything else keeps the
        envelope-plus-estimate model.
        """
        if _size_codec is not None:
            exact = _size_codec(self)
            if exact is not None:
                return exact
        size = ENVELOPE_BYTES
        for key, value in self.payload.items():
            size += len(key) + _wire_size(value)
        return size

    def reply(
        self, msg_type: MessageType, payload: Optional[Dict[str, Any]] = None
    ) -> "Message":
        """Build a response envelope addressed back to the sender."""
        return Message(
            msg_type=msg_type,
            src=self.dst,
            dst=self.src,
            payload=payload or {},
            reply_to=self.request_id,
        )

    def error_reply(self, code: str, detail: str = "") -> "Message":
        """Build a NAK response carrying an error code."""
        return self.reply(
            MessageType.ERROR, {"code": code, "detail": detail}
        )

    def __repr__(self) -> str:
        rid = f" req={self.request_id}" if self.request_id is not None else ""
        rto = f" re={self.reply_to}" if self.reply_to is not None else ""
        return (
            f"<Message {self.msg_type.value} {self.src}->{self.dst}{rid}{rto}>"
        )


def wire_label(message: "Message") -> str:
    """Human-readable label for a message: the type, annotated with a
    page count for batch envelopes so a trace (or a dispatch log line)
    shows how much work one RPC carries."""
    base = message.msg_type.value
    payload = message.payload
    if not isinstance(payload, dict):
        return base
    for key in ("pages", "updates"):
        batch = payload.get(key)
        if isinstance(batch, list):
            return f"{base}[{len(batch)} page(s)]"
    applied = payload.get("applied")
    if isinstance(applied, int):
        return f"{base}[{applied} page(s)]"
    return base
