"""Hot-path microbenchmarks: per-operation CPU and allocation cost.

Every other benchmark in this repository counts *virtual-time* costs —
messages, bytes, simulated seconds.  This suite measures the real cost
of executing one client operation: wall-clock throughput (ops/sec) and
transient allocation footprint (``tracemalloc`` peak) of the
``op_read`` / ``op_write`` / ``op_lock`` fast paths.  Results are
written to ``BENCH_hotpath.json`` so each PR leaves a visible perf
trajectory, and ``python -m repro.bench.hotpath --check`` gates CI on
regressions against the committed baseline.

Methodology (see docs/performance.md):

- ops/sec is measured with ``time.perf_counter`` over a fixed
  iteration count, with tracemalloc *off* (it slows allocation ~4x);
- allocation cost is measured separately as the tracemalloc peak of a
  single representative operation after warmup — a machine-independent
  number (it counts bytes allocated, not seconds);
- a pure-Python calibration loop is timed on the same machine so the
  CI regression gate can compare *normalized* throughput across
  hardware: ``ops_per_sec / calibration_ops_per_sec`` is stable where
  raw ops/sec is not.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import time
import tracemalloc
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api import create_cluster
from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.daemon import DaemonConfig
from repro.core.locks import LockMode

PAGE = 4096
BATCH_PAGES = 64

#: Iterations per benchmark: (full, quick).
ITERATIONS: Dict[str, Tuple[int, int]] = {
    "cached_read": (20000, 2000),
    "cold_read": (512, 128),
    "write_diff": (2000, 300),
    "lock_unlock": (5000, 800),
    "batch_64": (60, 12),
}

#: Throughput may drop to this fraction of the baseline (normalized by
#: the calibration loop) before --check fails.
OPS_TOLERANCE = 0.70
#: Allocation peaks may grow by this factor before --check fails.
ALLOC_TOLERANCE = 1.30


def _calibrate() -> float:
    """Ops/sec of a fixed pure-Python loop, for cross-machine scaling."""
    def unit() -> int:
        total = 0
        for i in range(200):
            total += i * 3 // 2
        return total

    unit()
    count = 2000
    start = time.perf_counter()
    for _ in range(count):
        unit()
    elapsed = time.perf_counter() - start
    return count / elapsed if elapsed > 0 else 0.0


def _measure(op: Callable[[], Any], iterations: int) -> Dict[str, float]:
    """Time ``iterations`` calls of ``op``, then trace one call."""
    # Warmup: fill caches, fault in code paths.
    for _ in range(min(10, iterations)):
        op()
    gc.collect()
    start = time.perf_counter()
    for _ in range(iterations):
        op()
    elapsed = time.perf_counter() - start
    ops_per_sec = iterations / elapsed if elapsed > 0 else 0.0

    # Allocation footprint of one op, measured in isolation: the
    # tracemalloc peak above the pre-op baseline counts every
    # transient buffer the op allocates (page copies show up here).
    gc.collect()
    tracemalloc.start()
    op()   # fault in tracemalloc-side allocations once
    gc.collect()
    before, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    op()
    after, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "ops_per_sec": round(ops_per_sec, 1),
        "iterations": iterations,
        "alloc_peak_per_op_bytes": peak - before,
        "alloc_retained_per_op_bytes": after - before,
    }


def _lan_cluster(num_nodes: int = 2):
    config = DaemonConfig(enable_failure_handling=False)
    return create_cluster(num_nodes=num_nodes, topology="lan", config=config)


def _make_region(cluster, session, pages: int,
                 level: ConsistencyLevel = ConsistencyLevel.RELEASE):
    region = session.reserve(
        pages * PAGE, RegionAttributes(consistency_level=level)
    )
    session.allocate(region.rid)
    cluster.run(1.0)
    return region


# --- The five microbenchmarks -----------------------------------------------


def bench_cached_read(iterations: int) -> Dict[str, float]:
    """Read one RAM-resident page under an open lock context."""
    cluster = _lan_cluster()
    kz = cluster.client(node=0)
    region = _make_region(cluster, kz, pages=4)
    ctx = kz.lock(region.rid, PAGE, LockMode.READ)
    kz.read(ctx, region.rid, PAGE)   # fault the page in

    def op() -> bytes:
        return kz.read(ctx, region.rid, PAGE)

    try:
        return _measure(op, iterations)
    finally:
        kz.unlock(ctx)


def bench_cold_read(iterations: int) -> Dict[str, float]:
    """Lock/read/unlock of a page this node has never cached."""
    cluster = _lan_cluster()
    owner = cluster.client(node=0)
    region = _make_region(cluster, owner, pages=iterations + 16)
    kz = cluster.client(node=1)
    next_page = iter(range(iterations + 16))

    def op() -> bytes:
        addr = region.rid + next(next_page) * PAGE
        ctx = kz.lock(addr, PAGE, LockMode.READ)
        try:
            return kz.read(ctx, addr, PAGE)
        finally:
            kz.unlock(ctx)

    return _measure(op, iterations)


def bench_write_diff(iterations: int) -> Dict[str, float]:
    """Write-shared cycle: twin, partial write, diff push at release."""
    cluster = _lan_cluster()
    owner = cluster.client(node=0)
    region = _make_region(cluster, owner, pages=4)
    kz = cluster.client(node=1)
    payload = b"x" * 64

    def op() -> None:
        ctx = kz.lock(region.rid, PAGE, LockMode.WRITE_SHARED)
        kz.write(ctx, region.rid + 128, payload)
        kz.unlock(ctx)

    return _measure(op, iterations)


def bench_lock_unlock(iterations: int) -> Dict[str, float]:
    """Read lock/unlock cycle on a locally resident page."""
    cluster = _lan_cluster()
    kz = cluster.client(node=0)
    region = _make_region(cluster, kz, pages=4)
    ctx = kz.lock(region.rid, PAGE, LockMode.READ)
    kz.read(ctx, region.rid, PAGE)
    kz.unlock(ctx)

    def op() -> None:
        inner = kz.lock(region.rid, PAGE, LockMode.READ)
        kz.unlock(inner)

    return _measure(op, iterations)


def bench_batch_64(iterations: int) -> Dict[str, float]:
    """64-page lock/read/write/unlock WRITE cycle from a remote node."""
    cluster = _lan_cluster()
    owner = cluster.client(node=0)
    region = _make_region(cluster, owner, pages=BATCH_PAGES)
    kz = cluster.client(node=1)
    size = BATCH_PAGES * PAGE
    blob = b"b" * size

    def op() -> None:
        ctx = kz.lock(region.rid, size, LockMode.WRITE)
        kz.read(ctx, region.rid, size)
        kz.write(ctx, region.rid, blob)
        kz.unlock(ctx)

    return _measure(op, iterations)


BENCHMARKS: Dict[str, Callable[[int], Dict[str, float]]] = {
    "cached_read": bench_cached_read,
    "cold_read": bench_cold_read,
    "write_diff": bench_write_diff,
    "lock_unlock": bench_lock_unlock,
    "batch_64": bench_batch_64,
}


def run_suite(quick: bool = False,
              only: Optional[List[str]] = None) -> Dict[str, Any]:
    """Run the suite; returns the BENCH_hotpath.json document."""
    results: Dict[str, Any] = {}
    for name, bench in BENCHMARKS.items():
        if only and name not in only:
            continue
        full, fast = ITERATIONS[name]
        results[name] = bench(fast if quick else full)
    return {
        "suite": "hotpath",
        "quick": quick,
        "calibration_ops_per_sec": round(_calibrate(), 1),
        "benchmarks": results,
    }


def check_regressions(baseline: Dict[str, Any],
                      measured: Dict[str, Any]) -> List[str]:
    """Failures of ``measured`` against the committed ``baseline``.

    Throughput compares *normalized* ops/sec (scaled by each run's
    calibration loop) so the gate holds across machines; allocation
    peaks are byte counts and compare directly.
    """
    failures: List[str] = []
    base_cal = baseline.get("calibration_ops_per_sec") or 1.0
    meas_cal = measured.get("calibration_ops_per_sec") or 1.0
    for name, base in baseline.get("benchmarks", {}).items():
        got = measured.get("benchmarks", {}).get(name)
        if got is None:
            failures.append(f"{name}: missing from measured run")
            continue
        base_norm = base["ops_per_sec"] / base_cal
        got_norm = got["ops_per_sec"] / meas_cal
        if base_norm > 0 and got_norm < base_norm * OPS_TOLERANCE:
            failures.append(
                f"{name}: normalized throughput {got_norm:.4f} fell below "
                f"{OPS_TOLERANCE:.0%} of baseline {base_norm:.4f}"
            )
        base_alloc = base.get("alloc_peak_per_op_bytes", 0)
        got_alloc = got.get("alloc_peak_per_op_bytes", 0)
        if base_alloc > 0 and got_alloc > base_alloc * ALLOC_TOLERANCE:
            failures.append(
                f"{name}: alloc peak {got_alloc}B exceeds "
                f"{ALLOC_TOLERANCE:.0%} of baseline {base_alloc}B"
            )
    return failures


def render(doc: Dict[str, Any]) -> str:
    lines = [
        f"hotpath suite (quick={doc['quick']}, "
        f"calibration={doc['calibration_ops_per_sec']:.0f} units/s)",
        f"{'benchmark':<14} {'ops/sec':>12} {'alloc peak/op':>14} "
        f"{'retained/op':>12}",
    ]
    for name, r in doc["benchmarks"].items():
        lines.append(
            f"{name:<14} {r['ops_per_sec']:>12.0f} "
            f"{r['alloc_peak_per_op_bytes']:>13}B "
            f"{r['alloc_retained_per_op_bytes']:>11}B"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Khazana hot-path microbenchmarks"
    )
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke mode)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="NAME", choices=sorted(BENCHMARKS),
                        help="run a subset of benchmarks")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write results JSON to PATH")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail (exit 1) on regression vs BASELINE json")
    args = parser.parse_args(argv)

    baseline = None
    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)

    doc = run_suite(quick=args.quick, only=args.only)
    print(render(doc))

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {os.path.abspath(args.output)}")

    if baseline is not None:
        failures = check_regressions(baseline, doc)
        if failures:
            print("REGRESSIONS vs baseline:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("no regressions vs baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
