"""Benchmark support: workload generators, metrics, result tables.

The paper has no quantitative evaluation (Section 5 admits the
prototype "performs poorly" and un-tuned); the experiments in
``benchmarks/`` therefore measure the *claims* of Sections 1-4 using
the workload machinery here.  Everything is seeded and runs in virtual
time, so results are deterministic.
"""

from repro.bench.metrics import LatencyRecorder, Table
from repro.bench.workloads import (
    AccessPattern,
    WorkloadSpec,
    ZipfGenerator,
    make_regions,
    run_access_workload,
)

__all__ = [
    "AccessPattern",
    "LatencyRecorder",
    "Table",
    "WorkloadSpec",
    "ZipfGenerator",
    "make_regions",
    "run_access_workload",
]
