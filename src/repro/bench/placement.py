"""Placement benchmarks: ring math cost, churn re-homing, lookup RPCs.

PR 9's pluggable placement seam claims three things worth numbers:

- **ring_rank** — a rendezvous lookup through the incremental
  :class:`~repro.core.placement.ring.DirectorTable` is cheap enough to
  sit on the hot path (wall-clock directs/sec, measured like
  ``repro.bench.hotpath``);
- **churn_rehome** — one join or leave on a ring of 100+ members over
  a million regions moves only ~``regions / members`` of them (the
  rendezvous minimal-disruption property), and membership events stay
  O(regions) rather than O(regions × members);
- **lookup_msgs** — locating a region under the ring costs a flat
  number of messages per operation regardless of churn, head-to-head
  against the tiered chain on the same simulated workload.

Results are written to ``BENCH_placement.json``; ``--check`` gates CI
(the ``placement-smoke`` job) on regressions against the committed
baseline.  Wall-clock numbers are normalized by the same pure-Python
calibration loop the hotpath suite uses, so the gate holds across
machines; balance ratios and simulated message counts are
deterministic and compare directly.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api import create_cluster
from repro.bench.hotpath import _calibrate
from repro.core.daemon import DaemonConfig
from repro.core.placement.ring import BUCKET_BYTES, DirectorTable

#: Per-benchmark size parameters: (full, quick).
RANK_LOOKUPS: Tuple[int, int] = (200_000, 20_000)
CHURN_MEMBERS: Tuple[int, int] = (128, 16)
CHURN_REGIONS: Tuple[int, int] = (1 << 20, 20_000)
CHURN_EVENTS: Tuple[int, int] = (12, 6)

#: The simulated lookup head-to-head runs identically in quick and
#: full mode (virtual-time message counts are deterministic), so the
#: quick CI run compares exactly against the committed full baseline.
LOOKUP_NODES = 4
LOOKUP_REGIONS = 8
LOOKUP_READS_PER_REGION = 3

#: Wall-clock throughput may drop to this fraction of the baseline
#: (normalized) before --check fails.
OPS_TOLERANCE = 0.60
#: Deterministic ratios (balance, msgs/op) may grow by this factor.
RATIO_TOLERANCE = 1.25
#: A single membership event may move at most this multiple of the
#: fair share ``ceil(regions / members)`` — the paper-level claim,
#: gated absolutely, not just relative to the baseline.
FAIR_SHARE_CEILING = 1.6


def bench_ring_rank(quick: bool) -> Dict[str, Any]:
    """Wall-clock cost of bucket→director lookups and one join."""
    lookups = RANK_LOOKUPS[quick]
    members = CHURN_MEMBERS[quick]
    buckets = 1 << 14
    table = DirectorTable(buckets, range(members))
    start = time.perf_counter()
    for i in range(lookups):
        table.director(i % buckets)
    elapsed = time.perf_counter() - start
    start = time.perf_counter()
    table.join(members + 7)
    join_elapsed = time.perf_counter() - start
    return {
        "lookups": lookups,
        "directs_per_sec": round(lookups / elapsed if elapsed else 0.0, 1),
        "join_buckets_per_sec": round(
            buckets / join_elapsed if join_elapsed else 0.0, 1
        ),
    }


def bench_churn_rehome(quick: bool) -> Dict[str, Any]:
    """Joins and leaves over a large ring: what fraction moves?

    Each region occupies one ``BUCKET_BYTES`` bucket (how the ring
    cluster reserves them), so bucket moves ARE region re-homes.  The
    fair share for an event is ``ceil(regions / members_after)``; the
    rendezvous property says no event should move much more than that.
    """
    members = CHURN_MEMBERS[quick]
    regions = CHURN_REGIONS[quick]
    events = CHURN_EVENTS[quick]
    table = DirectorTable(regions, range(members))
    ratios: List[float] = []
    moved_total = 0
    start = time.perf_counter()
    next_member = members
    for event in range(events):
        if event % 2 == 0:
            moved = table.join(next_member)
            next_member += 1
        else:
            # Retire the longest-serving member still on the ring.
            moved = table.leave(table.members[0])
        fair = -(-regions // len(table.members))
        ratios.append(len(moved) / fair)
        moved_total += len(moved)
    elapsed = time.perf_counter() - start
    spread = table.spread()
    mean_spread = sum(spread.values()) / len(spread)
    return {
        "members": members,
        "regions": regions,
        "events": events,
        "max_moved_over_fair": round(max(ratios), 4),
        "mean_moved_over_fair": round(sum(ratios) / len(ratios), 4),
        "moved_total": moved_total,
        "events_per_sec": round(events / elapsed if elapsed else 0.0, 3),
        "spread_max_over_mean": round(
            max(spread.values()) / mean_spread, 4
        ),
    }


def _lookup_cluster(placement: str):
    config = DaemonConfig(placement=placement,
                          region_directory_capacity=1)
    return create_cluster(num_nodes=LOOKUP_NODES, topology="lan",
                          config=config)


def _msgs_per_op(cluster, descs) -> float:
    kz = cluster.client(node=LOOKUP_NODES - 1)
    before = cluster.stats.messages_sent
    for _ in range(LOOKUP_READS_PER_REGION):
        for desc in descs:
            kz.read_at(desc.rid, 4)
    ops = LOOKUP_READS_PER_REGION * len(descs)
    return (cluster.stats.messages_sent - before) / ops


def bench_lookup_msgs(quick: bool) -> Dict[str, Any]:
    """Messages per remote read, tiered vs ring, before/after churn.

    ``region_directory_capacity=1`` keeps the reader's local directory
    cold (it thrashes across ``LOOKUP_REGIONS`` regions), so every
    read exercises the *remote* location path — the part the two
    strategies implement differently.  Regions are reserved a bucket
    apart so ring directors spread across the membership.
    """
    del quick   # deterministic virtual-time run; one size fits both
    results: Dict[str, Any] = {}
    for placement in ("tiered", "ring"):
        cluster = _lookup_cluster(placement)
        kz1 = cluster.client(node=1)
        descs = []
        for _ in range(LOOKUP_REGIONS):
            desc = kz1.reserve(BUCKET_BYTES)
            kz1.allocate(desc.rid)
            kz1.write_at(desc.rid, b"bench")
            descs.append(desc)
        cluster.run(5.0)
        results[f"{placement}_msgs_per_op"] = round(
            _msgs_per_op(cluster, descs), 3
        )
        if placement == "ring":
            cluster.add_node()
            cluster.run(20.0)   # join gossip + re-homing settles
            results["ring_msgs_per_op_after_churn"] = round(
                _msgs_per_op(cluster, descs), 3
            )
    return results


BENCHMARKS: Dict[str, Callable[[bool], Dict[str, Any]]] = {
    "ring_rank": bench_ring_rank,
    "churn_rehome": bench_churn_rehome,
    "lookup_msgs": bench_lookup_msgs,
}


def run_suite(quick: bool = False,
              only: Optional[List[str]] = None) -> Dict[str, Any]:
    """Run the suite; returns the BENCH_placement.json document."""
    results: Dict[str, Any] = {}
    for name, bench in BENCHMARKS.items():
        if only and name not in only:
            continue
        results[name] = bench(quick)
    return {
        "suite": "placement",
        "quick": quick,
        "calibration_ops_per_sec": round(_calibrate(), 1),
        "benchmarks": results,
    }


def check_regressions(baseline: Dict[str, Any],
                      measured: Dict[str, Any]) -> List[str]:
    """Failures of ``measured`` against the committed ``baseline``."""
    failures: List[str] = []
    base_cal = baseline.get("calibration_ops_per_sec") or 1.0
    meas_cal = measured.get("calibration_ops_per_sec") or 1.0
    base = baseline.get("benchmarks", {})
    got = measured.get("benchmarks", {})

    rank_base, rank_got = base.get("ring_rank"), got.get("ring_rank")
    if rank_base and rank_got:
        base_norm = rank_base["directs_per_sec"] / base_cal
        got_norm = rank_got["directs_per_sec"] / meas_cal
        if base_norm > 0 and got_norm < base_norm * OPS_TOLERANCE:
            failures.append(
                f"ring_rank: normalized directs/sec {got_norm:.4f} fell "
                f"below {OPS_TOLERANCE:.0%} of baseline {base_norm:.4f}"
            )

    churn_got = got.get("churn_rehome")
    if churn_got:
        if churn_got["max_moved_over_fair"] > FAIR_SHARE_CEILING:
            failures.append(
                f"churn_rehome: an event moved "
                f"{churn_got['max_moved_over_fair']:.2f}x the fair "
                f"share (ceiling {FAIR_SHARE_CEILING:.2f}x)"
            )
        churn_base = base.get("churn_rehome")
        if churn_base and (
            churn_got["spread_max_over_mean"]
            > churn_base["spread_max_over_mean"] * RATIO_TOLERANCE
        ):
            failures.append(
                "churn_rehome: ownership spread "
                f"{churn_got['spread_max_over_mean']:.3f} exceeds "
                f"{RATIO_TOLERANCE:.0%} of baseline "
                f"{churn_base['spread_max_over_mean']:.3f}"
            )

    msgs_base, msgs_got = base.get("lookup_msgs"), got.get("lookup_msgs")
    if msgs_got:
        flat_ceiling = msgs_got["ring_msgs_per_op"] * 1.5
        if msgs_got["ring_msgs_per_op_after_churn"] > flat_ceiling:
            failures.append(
                "lookup_msgs: ring msgs/op rose from "
                f"{msgs_got['ring_msgs_per_op']:.3f} to "
                f"{msgs_got['ring_msgs_per_op_after_churn']:.3f} under "
                "churn (not flat)"
            )
    if msgs_base and msgs_got:
        for key in ("tiered_msgs_per_op", "ring_msgs_per_op",
                    "ring_msgs_per_op_after_churn"):
            if msgs_got[key] > msgs_base[key] * RATIO_TOLERANCE:
                failures.append(
                    f"lookup_msgs: {key} {msgs_got[key]:.3f} exceeds "
                    f"{RATIO_TOLERANCE:.0%} of baseline "
                    f"{msgs_base[key]:.3f}"
                )
    return failures


def render(doc: Dict[str, Any]) -> str:
    lines = [
        f"placement suite (quick={doc['quick']}, "
        f"calibration={doc['calibration_ops_per_sec']:.0f} units/s)"
    ]
    for name, r in doc["benchmarks"].items():
        body = ", ".join(f"{k}={v}" for k, v in r.items())
        lines.append(f"  {name}: {body}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Khazana placement benchmarks"
    )
    parser.add_argument("--quick", action="store_true",
                        help="reduced sizes (CI smoke mode)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="NAME", choices=sorted(BENCHMARKS),
                        help="run a subset of benchmarks")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write results JSON to PATH")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail (exit 1) on regression vs BASELINE json")
    args = parser.parse_args(argv)

    baseline = None
    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)

    doc = run_suite(quick=args.quick, only=args.only)
    print(render(doc))

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {os.path.abspath(args.output)}")

    if baseline is not None:
        failures = check_regressions(baseline, doc)
        if failures:
            print("REGRESSIONS vs baseline:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("no regressions vs baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
