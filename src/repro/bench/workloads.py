"""Workload generators.

Seeded synthetic workloads standing in for the application traffic the
paper's motivating services would generate (file servers, web caches,
directory services) — the substitution recorded in DESIGN.md for the
absence of 1998 production traces.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api import Cluster
from repro.bench.metrics import LatencyRecorder
from repro.core.attributes import RegionAttributes
from repro.core.client import KhazanaSession
from repro.core.errors import KhazanaError
from repro.core.region import RegionDescriptor


class ZipfGenerator:
    """Seeded Zipf-distributed index generator over ``n`` items.

    Uses an inverse-CDF table; ``skew`` of 0 degenerates to uniform.
    """

    def __init__(self, n: int, skew: float = 0.99, seed: int = 0) -> None:
        if n < 1:
            raise ValueError(f"need at least one item, got {n}")
        self.n = n
        self.skew = skew
        self._rng = random.Random(seed)
        weights = [1.0 / (i ** skew) if skew > 0 else 1.0
                   for i in range(1, n + 1)]
        total = sum(weights)
        acc = 0.0
        self._cdf: List[float] = []
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def next(self) -> int:
        """Next index in [0, n)."""
        u = self._rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def sample(self, count: int) -> List[int]:
        return [self.next() for _ in range(count)]


class AccessPattern(str, enum.Enum):
    UNIFORM = "uniform"
    ZIPF = "zipf"
    SEQUENTIAL = "sequential"


@dataclass
class WorkloadSpec:
    """A read/write access workload over a set of regions."""

    operations: int = 200
    write_fraction: float = 0.1
    pattern: AccessPattern = AccessPattern.ZIPF
    zipf_skew: float = 0.99
    io_size: int = 128          # bytes touched per operation
    seed: int = 0


@dataclass
class WorkloadResult:
    """Outcome of one workload run on one session."""

    reads: int = 0
    writes: int = 0
    errors: int = 0
    latency: LatencyRecorder = field(default_factory=LatencyRecorder)

    @property
    def operations(self) -> int:
        return self.reads + self.writes


def make_regions(
    session: KhazanaSession,
    count: int,
    size: int = 4096,
    attrs: Optional[RegionAttributes] = None,
) -> List[RegionDescriptor]:
    """Reserve+allocate ``count`` regions from one session."""
    regions = []
    for _ in range(count):
        desc = session.reserve(size, attrs)
        session.allocate(desc.rid)
        regions.append(desc)
    return regions


def run_access_workload(
    cluster: Cluster,
    session: KhazanaSession,
    regions: Sequence[RegionDescriptor],
    spec: WorkloadSpec,
) -> WorkloadResult:
    """Run the spec'd operation mix; returns latency/count results.

    Latency is virtual seconds per operation (lock + access + unlock),
    exactly the client-visible cost a Khazana application sees.
    """
    result = WorkloadResult()
    rng = random.Random(spec.seed)
    zipf = ZipfGenerator(len(regions), spec.zipf_skew, seed=spec.seed + 1)
    sequential = 0
    for op_index in range(spec.operations):
        if spec.pattern is AccessPattern.UNIFORM:
            region = regions[rng.randrange(len(regions))]
        elif spec.pattern is AccessPattern.ZIPF:
            region = regions[zipf.next()]
        else:
            region = regions[sequential % len(regions)]
            sequential += 1
        is_write = rng.random() < spec.write_fraction
        size = min(spec.io_size, region.range.length)
        start = cluster.now
        try:
            if is_write:
                payload = bytes(
                    (op_index + i) % 256 for i in range(size)
                )
                session.write_at(region.rid, payload)
                result.writes += 1
            else:
                session.read_at(region.rid, size)
                result.reads += 1
        except KhazanaError:
            result.errors += 1
            continue
        result.latency.record(cluster.now - start)
    return result


def interleave_sessions(
    cluster: Cluster,
    sessions: Sequence[KhazanaSession],
    regions: Sequence[RegionDescriptor],
    spec: WorkloadSpec,
) -> Dict[int, WorkloadResult]:
    """Round-robin the workload across several client sessions.

    Approximates concurrent clients: each operation runs to completion
    (the simulator is single-threaded), but cache and sharing state
    evolves exactly as if the clients alternated.
    """
    results = {s.node_id: WorkloadResult() for s in sessions}
    per_session = max(1, spec.operations // max(1, len(sessions)))
    for index, session in enumerate(sessions):
        sub = WorkloadSpec(
            operations=per_session,
            write_fraction=spec.write_fraction,
            pattern=spec.pattern,
            zipf_skew=spec.zipf_skew,
            io_size=spec.io_size,
            seed=spec.seed + index * 7919,
        )
        outcome = run_access_workload(cluster, session, regions, sub)
        previous = results[session.node_id]
        previous.reads += outcome.reads
        previous.writes += outcome.writes
        previous.errors += outcome.errors
        previous.latency.samples.extend(outcome.latency.samples)
    return results
