"""Measurement helpers for the benchmark harness."""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence


class LatencyRecorder:
    """Collects per-operation virtual-time latencies."""

    def __init__(self) -> None:
        self.samples: List[float] = []

    def record(self, latency: float) -> None:
        self.samples.append(latency)

    def count(self) -> int:
        return len(self.samples)

    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, p in [0, 100]."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def total(self) -> float:
        return sum(self.samples)

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count()),
            "mean_ms": self.mean() * 1000,
            "p50_ms": self.percentile(50) * 1000,
            "p99_ms": self.percentile(99) * 1000,
        }


class Table:
    """Accumulates result rows and prints an aligned text table.

    Every benchmark prints one of these so the shape of each paper
    claim is visible directly in ``pytest benchmarks/`` output.
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(c.ljust(widths[i])
                               for i, c in enumerate(self.columns)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i])
                                   for i, cell in enumerate(row)))
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())

    def cell(self, row: int, column: str) -> str:
        return self.rows[row][self.columns.index(column)]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def speedup(baseline: float, measured: float) -> Optional[float]:
    """baseline / measured, or None when measured is zero."""
    if measured == 0:
        return None
    return baseline / measured
