"""Real-transport benchmarks: ops/sec and RPC RTT over loopback TCP.

Every virtual-time benchmark in ``benchmarks/`` answers "how many
messages does the protocol need"; this suite answers "what does an
operation cost on a real wire".  It boots several Khazana daemons *in
one process* but on separate :class:`~repro.net.tcp.TcpTransport`
instances sharing one asyncio loop, so every client/home interaction
crosses a genuine localhost socket (length-prefixed codec frames,
kernel buffers, loop scheduling) while staying hermetic enough for CI.

Each workload also runs a *sim twin* — the identical operation
sequence over the simulator backend — and records its RPC count and
virtual-time cost next to the real numbers.  The pair is the seam
check in benchmark form: if the protocol engine behaved differently
over TCP than over the sim, the messages-per-op columns would split.

Results land in ``BENCH_transport.json``; ``--check`` gates CI against
the committed baseline using calibration-normalized throughput (real
socket timings are noisy, so the tolerance is deliberately loose) and
near-exact sim RPC counts (those are deterministic).

Methodology notes are in docs/performance.md.
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import os
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api import create_cluster
from repro.bench.hotpath import _calibrate
from repro.core.addressing import DEFAULT_PAGE_SIZE
from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.client import KhazanaSession, SyncDriver
from repro.core.daemon import DaemonConfig
from repro.core.locks import LockMode
from repro.net.aio import AsyncioDriver, AsyncioRuntime
from repro.net.message import MessageType
from repro.net.rpc import RetryPolicy
from repro.tools.cluster import build_node, node_config, register_control

PAGE = DEFAULT_PAGE_SIZE
BATCH_PAGES = 4

#: Iterations per benchmark: (full, quick).
ITERATIONS: Dict[str, Tuple[int, int]] = {
    "rpc_rtt": (400, 60),
    "crew_cycle": (120, 20),
    "release_cycle": (120, 20),
    "batch_write": (60, 12),
}

#: Real-socket throughput may drop to this fraction of the committed
#: baseline (after calibration normalization) before --check fails.
#: Loose on purpose: loopback TCP timing varies far more across
#: machines and CI neighbours than the pure-CPU hot path does.
OPS_TOLERANCE = 0.25
#: Sim-twin RPC counts are deterministic; allow only rounding slack.
SIM_MSGS_TOLERANCE = 0.10

_PING_POLICY = RetryPolicy(timeout=0.5, retries=4)


# ---------------------------------------------------------------------------
# Harnesses: the same workload body runs against both backends
# ---------------------------------------------------------------------------


class RealHarness:
    """N daemons + 1 client on one loop, each on its own TcpTransport.

    Separate transports mean nothing short-circuits through the local
    loopback fast path: every inter-node frame crosses a real socket.
    """

    def __init__(self, num_daemons: int = 2) -> None:
        self.num_daemons = num_daemons
        book: Dict[int, Tuple[str, int]] = {}
        self.runtimes: List[AsyncioRuntime] = []
        self.daemons = []
        loop_owner: Optional[AsyncioRuntime] = None
        for node in range(num_daemons + 1):
            runtime = (AsyncioRuntime() if loop_owner is None
                       else AsyncioRuntime(loop_owner.loop))
            loop_owner = loop_owner or runtime
            runtime, daemon = build_node(node, book, runtime=runtime,
                                         config=node_config())
            self.runtimes.append(runtime)
            self.daemons.append(daemon)
        peers = list(range(num_daemons + 1))
        for runtime, daemon in zip(self.runtimes, self.daemons):
            daemon.bootstrap_system_region(peers=peers)
            register_control(daemon, runtime)
        self.client_runtime = self.runtimes[-1]
        self.client = self.daemons[-1]
        self.driver = AsyncioDriver(self.client_runtime, timeout=30.0)
        self.session = KhazanaSession(self.client, self.driver,
                                      principal="bench-transport")

    @property
    def client_node(self) -> int:
        return self.num_daemons

    def messages_sent(self) -> int:
        return sum(d.network.stats.messages_sent for d in self.daemons)

    def close(self) -> None:
        loop = self.client_runtime.loop
        for daemon in self.daemons:
            daemon.stop()
        async def shutdown() -> None:
            for daemon in self.daemons:
                await daemon.network.aclose()

        loop.run_until_complete(shutdown())
        loop.close()


class SimHarness:
    """The sim twin: same topology (2 daemons + client node) in virtual
    time, so RPC counts and virtual latency are directly comparable."""

    def __init__(self, num_daemons: int = 2) -> None:
        self.cluster = create_cluster(
            num_nodes=num_daemons + 1,
            config=DaemonConfig(enable_failure_handling=False),
        )
        self.client_node = num_daemons
        self.session = self.cluster.client(node=self.client_node)

    def messages_sent(self) -> int:
        return self.cluster.network.stats.messages_sent

    @property
    def now(self) -> float:
        return self.cluster.scheduler.now


def _make_region(session: KhazanaSession, protocol: str,
                 home_node: int, pages: int):
    """Reserve, re-home, then allocate (pages materialise at the home)."""
    level = {"crew": ConsistencyLevel.STRICT,
             "release": ConsistencyLevel.RELEASE}[protocol]
    desc = session.reserve(pages * PAGE, RegionAttributes(
        consistency_level=level, consistency_protocol=protocol,
        page_size=PAGE,
    ))
    if home_node not in desc.home_nodes:
        desc = session.migrate(desc.rid, home_node)
    session.allocate(desc.rid)
    return desc


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def _measure_real(harness: RealHarness, op: Callable[[], Any],
                  iterations: int) -> Dict[str, float]:
    for _ in range(min(5, iterations)):
        op()
    gc.collect()
    msgs_before = harness.messages_sent()
    start = time.perf_counter()
    for _ in range(iterations):
        op()
    elapsed = time.perf_counter() - start
    msgs = harness.messages_sent() - msgs_before
    return {
        "ops_per_sec": round(iterations / elapsed, 1) if elapsed else 0.0,
        "mean_ms_per_op": round(elapsed / iterations * 1000, 4),
        "msgs_per_op": round(msgs / iterations, 2),
        "iterations": iterations,
    }


def _measure_sim(harness: SimHarness, op: Callable[[], Any],
                 iterations: int) -> Dict[str, float]:
    for _ in range(min(5, iterations)):
        op()
    msgs_before = harness.messages_sent()
    virtual_before = harness.now
    for _ in range(iterations):
        op()
    msgs = harness.messages_sent() - msgs_before
    virtual = harness.now - virtual_before
    return {
        "sim_msgs_per_op": round(msgs / iterations, 2),
        "sim_virtual_ms_per_op": round(virtual / iterations * 1000, 4),
    }


# ---------------------------------------------------------------------------
# Workloads (each runs on both backends)
# ---------------------------------------------------------------------------


def bench_rpc_rtt(iterations: int) -> Dict[str, float]:
    """Round trip of one control ping to daemon 0: the RPC RTT floor."""
    harness = RealHarness()
    runtime, rpc = harness.client_runtime, harness.client.rpc

    def op() -> None:
        runtime.run_future(
            rpc.request(0, MessageType.APP_REQUEST, {"control": "ping"},
                        policy=_PING_POLICY),
            timeout=10.0,
        )

    try:
        result = _measure_real(harness, op, iterations)
    finally:
        harness.close()

    sim = SimHarness()
    daemon0 = sim.cluster.daemon(0)
    daemon0.rpc.on(
        MessageType.APP_REQUEST,
        lambda msg: daemon0.rpc.reply(msg, MessageType.APP_REPLY,
                                      {"node": 0}),
    )
    client = sim.cluster.daemon(sim.client_node)
    sim_driver = SyncDriver(sim.cluster.scheduler)

    def sim_op() -> None:
        sim_driver.wait(client.rpc.request(
            0, MessageType.APP_REQUEST, {"control": "ping"},
            policy=_PING_POLICY,
        ))

    result.update(_measure_sim(sim, sim_op, iterations))
    return result


def _cycle_bench(protocol: str, iterations: int) -> Dict[str, float]:
    """Write-lock/write/unlock + read-verify against a remote home."""

    def body(session: KhazanaSession, base: int, i: int) -> None:
        address = base + (i % BATCH_PAGES) * PAGE
        value = f"{protocol}:{i}".encode().ljust(64, b".")
        ctx = session.lock(address, PAGE, LockMode.WRITE)
        session.write(ctx, address, value)
        session.unlock(ctx)
        ctx = session.lock(address, PAGE, LockMode.READ)
        got = session.read(ctx, address, len(value))
        session.unlock(ctx)
        if bytes(got) != value:
            raise RuntimeError(f"read-your-writes broken in {protocol}")

    harness = RealHarness()
    desc = _make_region(harness.session, protocol, home_node=0,
                        pages=BATCH_PAGES)
    counter = iter(range(10 ** 9))

    def op() -> None:
        body(harness.session, desc.range.start, next(counter))

    try:
        result = _measure_real(harness, op, iterations)
    finally:
        harness.close()

    sim = SimHarness()
    sim_desc = _make_region(sim.session, protocol, home_node=0,
                            pages=BATCH_PAGES)
    sim_counter = iter(range(10 ** 9))

    def sim_op() -> None:
        body(sim.session, sim_desc.range.start, next(sim_counter))

    result.update(_measure_sim(sim, sim_op, iterations))
    return result


def bench_crew_cycle(iterations: int) -> Dict[str, float]:
    return _cycle_bench("crew", iterations)


def bench_release_cycle(iterations: int) -> Dict[str, float]:
    return _cycle_bench("release", iterations)


def bench_batch_write(iterations: int) -> Dict[str, float]:
    """One WRITE lock over 4 pages, 16 KiB write, unlock (bulk frames)."""
    size = BATCH_PAGES * PAGE
    blob = b"t" * size

    def body(session: KhazanaSession, base: int) -> None:
        ctx = session.lock(base, size, LockMode.WRITE)
        session.write(ctx, base, blob)
        session.unlock(ctx)

    harness = RealHarness()
    desc = _make_region(harness.session, "release", home_node=0,
                        pages=BATCH_PAGES)

    def op() -> None:
        body(harness.session, desc.range.start)

    try:
        result = _measure_real(harness, op, iterations)
    finally:
        harness.close()

    sim = SimHarness()
    sim_desc = _make_region(sim.session, "release", home_node=0,
                            pages=BATCH_PAGES)

    def sim_op() -> None:
        body(sim.session, sim_desc.range.start)

    result.update(_measure_sim(sim, sim_op, iterations))
    return result


BENCHMARKS: Dict[str, Callable[[int], Dict[str, float]]] = {
    "rpc_rtt": bench_rpc_rtt,
    "crew_cycle": bench_crew_cycle,
    "release_cycle": bench_release_cycle,
    "batch_write": bench_batch_write,
}


# ---------------------------------------------------------------------------
# Suite plumbing (mirrors repro.bench.hotpath)
# ---------------------------------------------------------------------------


def run_suite(quick: bool = False,
              only: Optional[List[str]] = None) -> Dict[str, Any]:
    """Run the suite; returns the BENCH_transport.json document."""
    results: Dict[str, Any] = {}
    for name, bench in BENCHMARKS.items():
        if only and name not in only:
            continue
        full, fast = ITERATIONS[name]
        results[name] = bench(fast if quick else full)
    return {
        "suite": "transport",
        "quick": quick,
        "calibration_ops_per_sec": round(_calibrate(), 1),
        "benchmarks": results,
    }


def check_regressions(baseline: Dict[str, Any],
                      measured: Dict[str, Any]) -> List[str]:
    """Failures of ``measured`` against the committed ``baseline``."""
    failures: List[str] = []
    base_cal = baseline.get("calibration_ops_per_sec") or 1.0
    meas_cal = measured.get("calibration_ops_per_sec") or 1.0
    for name, base in baseline.get("benchmarks", {}).items():
        got = measured.get("benchmarks", {}).get(name)
        if got is None:
            failures.append(f"{name}: missing from measured run")
            continue
        base_norm = base["ops_per_sec"] / base_cal
        got_norm = got["ops_per_sec"] / meas_cal
        if base_norm > 0 and got_norm < base_norm * OPS_TOLERANCE:
            failures.append(
                f"{name}: normalized throughput {got_norm:.6f} fell below "
                f"{OPS_TOLERANCE:.0%} of baseline {base_norm:.6f}"
            )
        base_sim = base.get("sim_msgs_per_op", 0.0)
        got_sim = got.get("sim_msgs_per_op", 0.0)
        if base_sim > 0 and abs(got_sim - base_sim) > \
                base_sim * SIM_MSGS_TOLERANCE:
            failures.append(
                f"{name}: sim twin sends {got_sim} msgs/op, baseline "
                f"{base_sim} (deterministic count moved)"
            )
    return failures


def render(doc: Dict[str, Any]) -> str:
    lines = [
        f"transport suite (quick={doc['quick']}, "
        f"calibration={doc['calibration_ops_per_sec']:.0f} units/s)",
        f"{'benchmark':<14} {'ops/sec':>10} {'ms/op':>9} "
        f"{'msgs/op':>8} {'sim msgs/op':>12} {'sim ms/op':>10}",
    ]
    for name, r in doc["benchmarks"].items():
        lines.append(
            f"{name:<14} {r['ops_per_sec']:>10.1f} "
            f"{r['mean_ms_per_op']:>9.3f} {r['msgs_per_op']:>8.2f} "
            f"{r.get('sim_msgs_per_op', 0.0):>12.2f} "
            f"{r.get('sim_virtual_ms_per_op', 0.0):>10.3f}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Khazana real-transport benchmarks (loopback TCP)"
    )
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke mode)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="NAME", choices=sorted(BENCHMARKS),
                        help="run a subset of benchmarks")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write results JSON to PATH")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail (exit 1) on regression vs BASELINE json")
    args = parser.parse_args(argv)

    baseline = None
    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)

    doc = run_suite(quick=args.quick, only=args.only)
    print(render(doc))

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {os.path.abspath(args.output)}")

    if baseline is not None:
        failures = check_regressions(baseline, doc)
        if failures:
            print("REGRESSIONS vs baseline:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("no regressions vs baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
