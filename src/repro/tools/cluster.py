"""Real-process cluster launcher: ``python -m repro.tools.cluster``.

Boots N Khazana daemon processes on localhost TCP (the
:class:`~repro.net.tcp.TcpTransport` over the
:class:`~repro.net.aio.AsyncioRuntime`), then drives a client workload
against them from the launcher process — the closest this repo gets to
the paper's deployment shape of "cooperating daemon processes running
on some machines of a potentially wide-area network" (Section 2).

The smoke workload reserves one region per requested consistency
protocol, migrates its home onto daemon 0 (so every lock/read/write
crosses a process boundary), runs read-your-writes cycles, then runs
the standard :mod:`repro.tools.fsck` pass over state snapshots pulled
from every daemon via ``APP_REQUEST`` control messages.

Modes:

- orchestrator (default): spawn daemons, run the workload, fsck,
  shut everything down; exit 0 iff the workload verified and fsck is
  clean.
- ``--serve --node I``: host daemon I (used for the spawned children;
  rarely invoked by hand).
- ``--peers host:port,...``: a multi-machine address book.  Each
  machine hosting daemon I runs ``--serve --node I --peers <spec>``
  with the identical spec; the machine running without ``--serve``
  becomes the client (the spec's final entry) and drives the same
  workload/fsck pass over the wide-area deployment.
"""

from __future__ import annotations

import argparse
import logging
import os
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.addressing import DEFAULT_PAGE_SIZE
from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.client import KhazanaSession
from repro.core.daemon import DaemonConfig, KhazanaDaemon
from repro.core.locks import LockMode
from repro.core.region import RegionDescriptor
from repro.net.aio import AsyncioDriver, AsyncioRuntime
from repro.net.message import MessageType
from repro.net.rpc import RetryPolicy
from repro.net.tcp import TcpTransport
from repro.storage.store import StoredPage
from repro.tools import fsck

logger = logging.getLogger(__name__)

#: Protocols the smoke workload exercises by default.
DEFAULT_WORKLOAD = "crew,release"

#: protocol name -> the client-facing level that selects it.
_LEVELS = {
    "crew": ConsistencyLevel.STRICT,
    "release": ConsistencyLevel.RELEASE,
    "eventual": ConsistencyLevel.EVENTUAL,
    "mobile": ConsistencyLevel.STRICT,
}


def address_book(num_daemons: int, base_port: int) -> Dict[int, Tuple[str, int]]:
    """Localhost addresses for daemons 0..N-1 plus the client (node N)."""
    return {
        node: ("127.0.0.1", base_port + node)
        for node in range(num_daemons + 1)
    }


def parse_peers(spec: str) -> Dict[int, Tuple[str, int]]:
    """Parse ``host:port,host:port,...`` into an address book.

    Entry *i* addresses daemon *i*; the final entry addresses the
    client node — the multi-machine replacement for the localhost
    book of :func:`address_book`.  Every participating process must be
    handed the identical spec.
    """
    entries = [entry.strip() for entry in spec.split(",") if entry.strip()]
    if len(entries) < 2:
        raise ValueError(
            "--peers needs at least two host:port entries "
            "(one daemon plus the client)"
        )
    book: Dict[int, Tuple[str, int]] = {}
    for node, entry in enumerate(entries):
        host, sep, port = entry.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"bad --peers entry {entry!r}: want host:port"
            )
        try:
            book[node] = (host, int(port))
        except ValueError:
            raise ValueError(f"bad --peers port in {entry!r}") from None
    return book


def resolve_book(args: argparse.Namespace) -> Dict[int, Tuple[str, int]]:
    """The address book this invocation runs against: ``--peers`` when
    given, otherwise the localhost book."""
    if getattr(args, "peers", None):
        return parse_peers(args.peers)
    return address_book(args.nodes, args.base_port)


def default_base_port() -> int:
    """A per-process default to keep parallel CI runs off each other."""
    return 20000 + (os.getpid() % 20000)


def node_config() -> DaemonConfig:
    """Daemon tunables for the localhost deployment.

    Failure detection stays off: the launcher owns the membership for
    its whole (short) life, and wall-clock ping timers firing into a
    half-started cluster would only add noise to the smoke signal.
    """
    return DaemonConfig(
        enable_failure_handling=False,
        cluster_manager_node=0,
        bootstrap_node=0,
    )


def build_node(
    node_id: int,
    book: Dict[int, Tuple[str, int]],
    runtime: Optional[AsyncioRuntime] = None,
    config: Optional[DaemonConfig] = None,
) -> Tuple[AsyncioRuntime, KhazanaDaemon]:
    """One daemon on the asyncio backend, listening on its book entry.

    With ``runtime`` given, the daemon joins that runtime's loop (the
    in-process bench/tests host several daemons on one loop, each with
    its own transport); otherwise a fresh loop is created.
    """
    if runtime is None:
        runtime = AsyncioRuntime()
    transport = TcpTransport(book, runtime.loop)
    runtime.transport = transport
    runtime.loop.run_until_complete(transport.listen(node_id))
    daemon = KhazanaDaemon(
        node_id, runtime, config=config if config is not None
        else node_config()
    )
    return runtime, daemon


# ---------------------------------------------------------------------------
# State snapshots: fsck over processes
# ---------------------------------------------------------------------------
#
# fsck inspects a quiesced cluster through a narrow duck type —
# daemon(n) / node_ids() / network.is_crashed(n) plus each daemon's
# homed_regions, page_directory.homed_entries() and storage levels.
# Each daemon process serialises exactly that surface into a plain
# dict; the launcher reassembles the dicts into a SnapshotCluster and
# runs the *unchanged* fsck pass over it.

def snapshot_node(daemon: KhazanaDaemon) -> Dict[str, Any]:
    """This daemon's fsck-relevant state as a picklable dict."""

    def level_snapshot(level: Any) -> Dict[str, Any]:
        pages = {}
        for address in level.addresses():
            page = (level.peek(address) if hasattr(level, "peek")
                    else level.get(address))
            if page is not None:
                pages[address] = bytes(page.data)
        return {"used": level.used_bytes(),
                "capacity": level.capacity_bytes,
                "pages": pages}

    return {
        "node": daemon.node_id,
        "regions": [desc.to_wire() for desc in
                    daemon.homed_regions.values()],
        "entries": [
            {
                "address": entry.address,
                "rid": entry.rid,
                "sharers": sorted(entry.sharers),
                "allocated": entry.allocated,
            }
            for entry in daemon.page_directory.homed_entries()
        ],
        "storage": {
            "memory": level_snapshot(daemon.storage.memory),
            "disk": level_snapshot(daemon.storage.disk),
        },
    }


class _SnapshotEntry:
    def __init__(self, raw: Dict[str, Any]) -> None:
        self.address = raw["address"]
        self.rid = raw["rid"]
        self.sharers = set(raw["sharers"])
        self.allocated = raw["allocated"]


class _SnapshotLevel:
    def __init__(self, raw: Dict[str, Any]) -> None:
        self._used = raw["used"]
        self.capacity_bytes = raw["capacity"]
        self._pages = {
            address: StoredPage(address, data, dirty=False)
            for address, data in raw["pages"].items()
        }

    def addresses(self) -> List[int]:
        return list(self._pages)

    def peek(self, address: int) -> Optional[StoredPage]:
        return self._pages.get(address)

    def used_bytes(self) -> int:
        return self._used


class _SnapshotStorage:
    def __init__(self, raw: Dict[str, Any]) -> None:
        self.memory = _SnapshotLevel(raw["memory"])
        self.disk = _SnapshotLevel(raw["disk"])

    def peek(self, address: int) -> Optional[StoredPage]:
        page = self.memory.peek(address)
        return page if page is not None else self.disk.peek(address)

    def contains(self, address: int) -> bool:
        return self.peek(address) is not None


class _SnapshotDirectory:
    def __init__(self, entries: List[_SnapshotEntry]) -> None:
        self._entries = entries

    def homed_entries(self) -> List[_SnapshotEntry]:
        return list(self._entries)


class _SnapshotDaemon:
    def __init__(self, raw: Dict[str, Any]) -> None:
        self.node_id = raw["node"]
        self.homed_regions = {
            desc.rid: desc
            for desc in (RegionDescriptor.from_wire(wire)
                         for wire in raw["regions"])
        }
        self.page_directory = _SnapshotDirectory(
            [_SnapshotEntry(entry) for entry in raw["entries"]]
        )
        self.storage = _SnapshotStorage(raw["storage"])


class _NoFailures:
    @staticmethod
    def is_crashed(node_id: int) -> bool:
        return False


class SnapshotCluster:
    """The cluster duck type fsck expects, over per-node snapshots."""

    def __init__(self, snapshots: List[Dict[str, Any]]) -> None:
        self._daemons = {
            raw["node"]: _SnapshotDaemon(raw) for raw in snapshots
        }
        self.network = _NoFailures()

    def node_ids(self) -> List[int]:
        return sorted(self._daemons)

    def daemon(self, node: int) -> _SnapshotDaemon:
        return self._daemons[node]


# ---------------------------------------------------------------------------
# Daemon process (--serve)
# ---------------------------------------------------------------------------

def register_control(daemon: KhazanaDaemon, runtime: AsyncioRuntime) -> None:
    """Wire the launcher's control plane onto ``APP_REQUEST``."""

    def handle(msg) -> None:
        op = msg.payload.get("control")
        if op == "ping":
            daemon.rpc.reply(msg, MessageType.APP_REPLY,
                             {"node": daemon.node_id})
        elif op == "snapshot":
            daemon.rpc.reply(msg, MessageType.APP_REPLY,
                             {"snapshot": snapshot_node(daemon)})
        elif op == "shutdown":
            daemon.rpc.reply(msg, MessageType.APP_REPLY, {})
            # Let the reply frame flush before tearing the loop down.
            runtime.call_later(0.05, runtime.stop, label="shutdown")
        else:
            daemon.rpc.reply_error(msg, "bad_control", repr(op))

    daemon.rpc.on(MessageType.APP_REQUEST, handle)


def serve(args: argparse.Namespace) -> int:
    book = resolve_book(args)
    num_daemons = len(book) - 1
    runtime, daemon = build_node(args.node, book)
    daemon.bootstrap_system_region(peers=list(range(num_daemons + 1)))
    register_control(daemon, runtime)
    print("READY", flush=True)
    try:
        runtime.run_forever()
    finally:
        daemon.stop()
        runtime.loop.run_until_complete(daemon.network.aclose())
        runtime.close()
    return 0


# ---------------------------------------------------------------------------
# Client driver (runs inside the orchestrator process)
# ---------------------------------------------------------------------------

#: Patient per-request policy for control traffic while daemons come up.
_CONTROL_POLICY = RetryPolicy(timeout=0.5, retries=4)


def _control(runtime: AsyncioRuntime, daemon: KhazanaDaemon, peer: int,
             op: str, timeout: float = 20.0) -> Dict[str, Any]:
    reply = runtime.run_future(
        daemon.rpc.request(peer, MessageType.APP_REQUEST, {"control": op},
                           policy=_CONTROL_POLICY),
        timeout=timeout,
    )
    return reply.payload


def run_workload(session: KhazanaSession, protocol: str, home_node: int,
                 pages: int = 4, ops: int = 8) -> Dict[str, Any]:
    """Reserve/allocate a region homed on ``home_node`` and hammer it.

    Every cycle write-locks a page, writes a distinct value, unlocks,
    then read-locks and verifies — read-your-writes through the real
    wire, since the home (and therefore CREW lock mediation and
    release write-backs) lives in another process.
    """
    attrs = RegionAttributes(
        consistency_level=_LEVELS[protocol],
        consistency_protocol=protocol,
        page_size=DEFAULT_PAGE_SIZE,
    )
    # Migrate before allocating so the pages materialise at their final
    # home: allocation records the allocating node as a sharer, and a
    # later migration would leave the home granting data-less tokens to
    # a "sharer" whose lazily-zero copy never existed (same edge on the
    # sim backend).
    desc = session.reserve(pages * DEFAULT_PAGE_SIZE, attrs)
    if home_node not in desc.home_nodes:
        desc = session.migrate(desc.rid, home_node)
    session.allocate(desc.rid)
    base = desc.range.start
    verified = 0
    for i in range(ops):
        address = base + (i % pages) * DEFAULT_PAGE_SIZE
        value = f"{protocol}:{i}".encode().ljust(64, b".")
        ctx = session.lock(address, DEFAULT_PAGE_SIZE, LockMode.WRITE)
        session.write(ctx, address, value)
        session.unlock(ctx)
        ctx = session.lock(address, DEFAULT_PAGE_SIZE, LockMode.READ)
        got = session.read(ctx, address, len(value))
        session.unlock(ctx)
        if bytes(got) != value:
            raise RuntimeError(
                f"{protocol}: read back {got!r}, expected {value!r}"
            )
        verified += 1
    return {"protocol": protocol, "rid": desc.rid, "ops": verified}


def run_client(args: argparse.Namespace) -> int:
    book = resolve_book(args)
    num_daemons = len(book) - 1
    client_node = num_daemons
    runtime, daemon = build_node(client_node, book)
    driver = AsyncioDriver(runtime, timeout=args.op_timeout)
    session = KhazanaSession(daemon, driver, principal="cluster-smoke")
    daemon.bootstrap_system_region(peers=list(range(num_daemons + 1)))

    failures = 0
    try:
        for peer in range(num_daemons):
            _control(runtime, daemon, peer, "ping")
        print(f"cluster: {num_daemons} daemon(s) answering", flush=True)

        for protocol in args.workload.split(","):
            outcome = run_workload(
                session, protocol.strip(), home_node=0,
                pages=args.pages, ops=args.ops,
            )
            print(
                f"workload {outcome['protocol']}: {outcome['ops']} "
                f"read-your-writes cycles verified "
                f"(region {outcome['rid']:#x})",
                flush=True,
            )

        snapshots = [
            _control(runtime, daemon, peer, "snapshot")["snapshot"]
            for peer in range(num_daemons)
        ]
        snapshots.append(snapshot_node(daemon))
        report = fsck.check_cluster(SnapshotCluster(snapshots))
        print(report.render(), flush=True)
        if not report.ok:
            failures += 1

        sent = daemon.network.stats
        print(
            f"client traffic: {sent.messages_sent} sent / "
            f"{sent.bytes_sent} bytes over TCP",
            flush=True,
        )
    except Exception:
        logger.exception("cluster workload failed")
        failures += 1
    finally:
        for peer in range(num_daemons):
            try:
                _control(runtime, daemon, peer, "shutdown", timeout=5.0)
            except Exception:
                logger.warning("daemon %d did not acknowledge shutdown",
                               peer)
        daemon.stop()
        runtime.loop.run_until_complete(daemon.network.aclose())
        runtime.close()
    return 1 if failures else 0


# ---------------------------------------------------------------------------
# Orchestrator
# ---------------------------------------------------------------------------

def _spawn_daemons(args: argparse.Namespace) -> List[subprocess.Popen]:
    procs = []
    for node in range(args.nodes):
        procs.append(subprocess.Popen(
            [
                sys.executable, "-m", "repro.tools.cluster",
                "--serve", "--node", str(node),
                "--nodes", str(args.nodes),
                "--base-port", str(args.base_port),
            ],
            stdout=subprocess.PIPE,
            text=True,
        ))
    return procs


def _await_ready(procs: List[subprocess.Popen]) -> None:
    for node, proc in enumerate(procs):
        line = proc.stdout.readline().strip() if proc.stdout else ""
        if line != "READY":
            raise RuntimeError(
                f"daemon {node} failed to start (said {line!r}); "
                "is the port range free?"
            )


def _reap(procs: List[subprocess.Popen], grace: float = 5.0) -> None:
    deadline = time.monotonic() + grace
    for proc in procs:
        try:
            proc.wait(timeout=max(0.1, deadline - time.monotonic()))
        except subprocess.TimeoutExpired:
            proc.terminate()
            try:
                proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                proc.kill()
        if proc.stdout:
            proc.stdout.close()


def orchestrate(args: argparse.Namespace) -> int:
    print(
        f"launching {args.nodes} daemon(s) on 127.0.0.1 "
        f"ports {args.base_port}..{args.base_port + args.nodes}",
        flush=True,
    )
    procs = _spawn_daemons(args)
    try:
        _await_ready(procs)
        status = run_client(args)
    except Exception:
        logger.exception("cluster orchestration failed")
        status = 1
    finally:
        _reap(procs)
    print("cluster smoke:", "OK" if status == 0 else "FAILED", flush=True)
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.cluster",
        description="Boot a localhost Khazana cluster over real TCP "
                    "and run a read/write/lock smoke workload.",
    )
    parser.add_argument("--nodes", type=int, default=3,
                        help="daemon process count (default 3)")
    parser.add_argument("--base-port", type=int,
                        default=default_base_port(),
                        help="first TCP port (daemon i uses base+i; "
                             "the client uses base+N)")
    parser.add_argument("--workload", default=DEFAULT_WORKLOAD,
                        help="comma-separated consistency protocols "
                             f"(default {DEFAULT_WORKLOAD!r})")
    parser.add_argument("--ops", type=int, default=8,
                        help="read-your-writes cycles per protocol")
    parser.add_argument("--pages", type=int, default=4,
                        help="pages per workload region")
    parser.add_argument("--op-timeout", type=float, default=30.0,
                        help="wall-clock bound per client operation")
    parser.add_argument("--peers", default=None,
                        help="comma-separated host:port address book: one "
                             "entry per daemon plus a final entry for the "
                             "client.  Replaces the localhost book; each "
                             "daemon machine runs --serve --node I with the "
                             "identical spec, and the machine running "
                             "without --serve drives the workload")
    parser.add_argument("--serve", action="store_true",
                        help="host one daemon process (used by the "
                             "orchestrator's children, or by hand on each "
                             "machine of a --peers deployment)")
    parser.add_argument("--node", type=int, default=0,
                        help="internal: which daemon to host")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.INFO,
        format="%(levelname)s %(name)s: %(message)s",
        stream=sys.stderr,
    )
    for protocol in args.workload.split(","):
        if protocol.strip() not in _LEVELS:
            parser.error(f"unknown protocol {protocol!r}")
    if args.peers:
        try:
            parse_peers(args.peers)
        except ValueError as error:
            parser.error(str(error))
    if args.serve:
        return serve(args)
    if args.peers:
        # Multi-machine mode: the daemons were started elsewhere with
        # --serve --peers; this process only drives the workload.
        return run_client(args)
    return orchestrate(args)


if __name__ == "__main__":
    raise SystemExit(main())
