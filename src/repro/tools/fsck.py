"""fsck for Khazana: verify the store's global invariants.

Checks performed against a (quiesced) cluster:

1. **Map partition** — the address-map tree's entries are disjoint,
   sorted, and jointly cover the entire 128-bit space.
2. **Reservation agreement** — every RESERVED map entry's home list
   names at least one node that actually homes the region, and every
   homed region appears in the map.
3. **Descriptor sanity** — homed descriptors are internally consistent
   (alignment, home membership) and agree across home nodes on the
   newest version.
4. **Copyset accuracy** — for CREW pages, every node listed in a home's
   copyset actually holds a copy (stale hints here cost correctness,
   unlike the lookup caches).
5. **Storage accounting** — every level's used-byte counter matches
   the sum of its resident pages.

With ``strict=True`` the pass additionally runs the quiesced-state
invariants from :mod:`repro.analysis.invariants` — pin balance,
replica floors, and directory/store agreement — which assume no lock
contexts are open and background repair has converged.

Run via :func:`check_cluster`; returns an :class:`FsckReport` whose
``ok`` property is the overall verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List

from repro.analysis import invariants
from repro.core.address_map import (
    ROOT_PAGE,
    EntryState,
    MapNode,
)
from repro.core.addressing import MAX_ADDRESS
from repro.core.daemon import SYSTEM_RID


@dataclass
class FsckReport:
    """Findings from one fsck pass."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    checked_map_entries: int = 0
    checked_regions: int = 0
    checked_pages: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors

    def error(self, message: str) -> None:
        self.errors.append(message)

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def render(self) -> str:
        lines = [
            f"fsck: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s); "
            f"{self.checked_map_entries} map entries, "
            f"{self.checked_regions} regions, "
            f"{self.checked_pages} pages checked"
        ]
        lines.extend(f"  ERROR: {e}" for e in self.errors)
        lines.extend(f"  warn:  {w}" for w in self.warnings)
        return "\n".join(lines)


def _map_entries(cluster) -> List[Any]:
    """Walk the address-map tree directly from the bootstrap node's
    storage (fsck inspects state; it must not mutate it)."""
    bootstrap = cluster.daemon(0)
    entries: List[Any] = []

    def walk(page_addr: int) -> None:
        page = bootstrap.storage.peek(page_addr)
        if page is None:
            return
        node = MapNode.decode(page.data)
        for entry in node.entries:
            if entry.state is EntryState.SUBTREE:
                walk(entry.child_page)
            else:
                entries.append(entry)

    walk(ROOT_PAGE)
    return entries


def check_cluster(cluster, strict: bool = False) -> FsckReport:
    """Run every invariant check against ``cluster``.

    ``strict`` adds the quiesced-state invariants (pin balance,
    replica floors, directory/store agreement, token conservation);
    only use it when no lock contexts are open and repair has had
    time to converge.
    """
    report = FsckReport()
    _check_map_partition(cluster, report)
    _check_reservations(cluster, report)
    _check_descriptors(cluster, report)
    _check_copysets(cluster, report)
    _check_storage_accounting(cluster, report)
    if strict:
        _check_strict_invariants(cluster, report)
    return report


def _check_strict_invariants(cluster, report: FsckReport) -> None:
    live = [
        cluster.daemon(node) for node in cluster.node_ids()
        if not cluster.network.is_crashed(node)
    ]
    for problem in invariants.check_pin_balance(live):
        report.error(f"strict: {problem}")
    for problem in invariants.check_replica_floor(live):
        report.error(f"strict: {problem}")
    for problem in invariants.check_directory_store_agreement(live):
        report.error(f"strict: {problem}")
    for problem in invariants.check_token_ledgers(live):
        report.error(f"strict: {problem}")


def _check_map_partition(cluster, report: FsckReport) -> None:
    entries = sorted(_map_entries(cluster), key=lambda e: e.range.start)
    report.checked_map_entries = len(entries)
    if not entries:
        report.error("address map is empty (root page unreadable?)")
        return
    if entries[0].range.start != 0:
        report.error(
            f"map does not start at 0 (first entry at "
            f"{entries[0].range.start:#x})"
        )
    position = 0
    for entry in entries:
        if entry.range.start != position:
            report.error(
                f"map gap or overlap at {position:#x}: next entry starts "
                f"at {entry.range.start:#x}"
            )
        position = entry.range.end
    if position != MAX_ADDRESS + 1:
        report.error(
            f"map does not cover the full space (ends at {position:#x})"
        )


def _check_reservations(cluster, report: FsckReport) -> None:
    entries = _map_entries(cluster)
    reserved = {
        e.range.start: e for e in entries if e.state is EntryState.RESERVED
    }
    homed_anywhere = {}
    for node in cluster.node_ids():
        for rid, desc in cluster.daemon(node).homed_regions.items():
            homed_anywhere.setdefault(rid, set()).add(node)

    for rid, entry in reserved.items():
        if rid == SYSTEM_RID:
            continue
        report.checked_regions += 1
        homes_alive = [
            n for n in entry.home_nodes
            if n in cluster.node_ids() and not cluster.network.is_crashed(n)
        ]
        actual = homed_anywhere.get(rid, set())
        if not actual:
            report.warn(
                f"region {rid:#x} is in the map (homes {entry.home_nodes}) "
                "but no live node homes it"
            )
        elif not (set(entry.home_nodes) & actual):
            # The map may lag after failover/migration: stale but fixable.
            report.warn(
                f"region {rid:#x}: map homes {entry.home_nodes} disjoint "
                f"from actual homes {sorted(actual)} (stale map entry)"
            )

    for rid in homed_anywhere:
        if rid != SYSTEM_RID and rid not in reserved:
            report.error(
                f"region {rid:#x} is homed on {sorted(homed_anywhere[rid])} "
                "but missing from the address map"
            )


def _check_descriptors(cluster, report: FsckReport) -> None:
    by_rid = {}
    for node in cluster.node_ids():
        for rid, desc in cluster.daemon(node).homed_regions.items():
            by_rid.setdefault(rid, []).append((node, desc))
    for rid, copies in by_rid.items():
        newest = max(desc.version for _n, desc in copies)
        for node, desc in copies:
            if node not in desc.home_nodes:
                report.error(
                    f"node {node} homes region {rid:#x} but is not in its "
                    f"own descriptor's home list {desc.home_nodes}"
                )
            if desc.range.start % desc.attrs.page_size != 0:
                report.error(f"region {rid:#x} misaligned at node {node}")
            if desc.version < newest:
                report.warn(
                    f"node {node} holds version {desc.version} of region "
                    f"{rid:#x}; newest seen is {newest}"
                )


def _check_copysets(cluster, report: FsckReport) -> None:
    for node in cluster.node_ids():
        daemon = cluster.daemon(node)
        for entry in daemon.page_directory.homed_entries():
            if entry.rid == SYSTEM_RID:
                continue
            report.checked_pages += 1
            for sharer in entry.sharers:
                if sharer == node and entry.allocated:
                    # The home's own copy may be a lazily materialised
                    # zero page; it can always produce it.
                    continue
                if sharer not in cluster.node_ids():
                    report.error(
                        f"page {entry.address:#x}: copyset names unknown "
                        f"node {sharer}"
                    )
                    continue
                if cluster.network.is_crashed(sharer):
                    continue   # detector will scrub it; not an error
                peer = cluster.daemon(sharer)
                if not peer.storage.contains(entry.address):
                    report.error(
                        f"page {entry.address:#x}: home {node} lists node "
                        f"{sharer} as sharer but it holds no copy"
                    )


def _check_storage_accounting(cluster, report: FsckReport) -> None:
    for node in cluster.node_ids():
        daemon = cluster.daemon(node)
        for name, level in (("memory", daemon.storage.memory),
                            ("disk", daemon.storage.disk)):
            actual = 0
            for address in level.addresses():
                page = (level.peek(address) if hasattr(level, "peek")
                        else level.get(address))
                if page is not None:
                    actual += page.size
            if actual != level.used_bytes():
                report.error(
                    f"node {node} {name}: used_bytes()="
                    f"{level.used_bytes()} but pages total {actual}"
                )
            if level.used_bytes() > level.capacity_bytes:
                report.error(
                    f"node {node} {name}: over capacity "
                    f"({level.used_bytes()} > {level.capacity_bytes})"
                )
