"""Message tracing and ASCII sequence diagrams.

Attach a :class:`MessageTrace` to a cluster, run some operations, and
render what happened on the wire — the textual equivalent of the
paper's Figure 2.  Used by the examples and handy when debugging new
consistency protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.net.message import Message, MessageType, wire_label


@dataclass
class TracedMessage:
    """One send event captured from the network."""

    time: float
    message: Message

    @property
    def label(self) -> str:
        """Message type, annotated with a page count for batch
        envelopes so a trace shows how much work one RPC carries.
        Shared with the MessageRouter's dispatch logging."""
        return wire_label(self.message)


class MessageTrace:
    """Records every message a cluster sends while active."""

    def __init__(self, cluster, background: bool = False) -> None:
        """``background=False`` filters out failure-detector pings and
        free-space reports, which otherwise drown protocol traffic."""
        self.cluster = cluster
        self.include_background = background
        self.events: List[TracedMessage] = []
        self._active = False
        cluster.network.tap(self._on_send)

    _BACKGROUND = {
        MessageType.PING, MessageType.PONG, MessageType.FREE_SPACE_REPORT
    }

    def _on_send(self, message: Message) -> None:
        if not self._active:
            return
        if (not self.include_background
                and message.msg_type in self._BACKGROUND):
            return
        self.events.append(TracedMessage(self.cluster.now, message))

    # --- Collection -------------------------------------------------------

    def start(self) -> "MessageTrace":
        self._active = True
        return self

    def stop(self) -> "MessageTrace":
        self._active = False
        return self

    def clear(self) -> "MessageTrace":
        self.events.clear()
        return self

    def __enter__(self) -> "MessageTrace":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # --- Queries -----------------------------------------------------------

    def count(self, msg_type: Optional[MessageType] = None) -> int:
        if msg_type is None:
            return len(self.events)
        return sum(1 for e in self.events if e.message.msg_type is msg_type)

    def between(self, src: int, dst: int) -> List[TracedMessage]:
        return [e for e in self.events
                if e.message.src == src and e.message.dst == dst]

    def filter(self, predicate: Callable[[Message], bool]) -> List[TracedMessage]:
        return [e for e in self.events if predicate(e.message)]

    def by_engine_op(self) -> Dict[str, int]:
        """Counts grouped by the protocol-engine operation each wire
        message belongs to (``grant`` / ``fetch`` / ``update`` /
        ``invalidate`` / ``copyset``); traffic outside the engine's
        wire surface lands under ``other``."""
        from repro.consistency.engine.wire import wire_op

        counts: Dict[str, int] = {}
        for e in self.events:
            op = wire_op(e.message.msg_type) or "other"
            counts[op] = counts.get(op, 0) + 1
        return counts

    # --- Rendering ------------------------------------------------------------

    def render_sequence(self, nodes: Optional[Sequence[int]] = None,
                        width: int = 14) -> str:
        """An ASCII sequence diagram of the captured messages.

        One column per node; each line is one message with an arrow
        from sender to receiver, annotated with the message type —
        read it like the paper's Figure 2.
        """
        if nodes is None:
            seen = set()
            for e in self.events:
                seen.add(e.message.src)
                seen.add(e.message.dst)
            nodes = sorted(seen)
        if not nodes:
            return "(no messages)"
        columns = {node: i for i, node in enumerate(nodes)}
        total = width * len(nodes)

        lines = []
        header = "".join(f"node {node}".center(width) for node in nodes)
        lines.append("time(ms)  " + header)
        lines.append("--------  " + "-" * total)
        for e in self.events:
            src = columns.get(e.message.src)
            dst = columns.get(e.message.dst)
            if src is None or dst is None:
                continue
            row = [" "] * total
            lo = min(src, dst) * width + width // 2
            hi = max(src, dst) * width + width // 2
            for i in range(lo, hi):
                row[i] = "-"
            if dst > src:
                row[hi - 1] = ">"
            else:
                row[lo] = "<"
            text = "".join(row)
            stamp = f"{e.time * 1000:8.3f}"
            lines.append(f"{stamp}  {text}  {e.label}")
        return "\n".join(lines)

    def summary(self) -> str:
        """Counts per message type, most frequent first."""
        counts = {}
        for e in self.events:
            counts[e.label] = counts.get(e.label, 0) + 1
        lines = [f"{count:5d}  {label}" for label, count in
                 sorted(counts.items(), key=lambda kv: -kv[1])]
        return "\n".join(lines) if lines else "(no messages)"
