"""Operator tools: consistency checking and cluster inspection.

The original Khazana team debugged a live distributed store; these are
the tools that make that tractable here — an ``fsck``-style invariant
checker over the address map and directories, and inspection helpers
that summarize a running cluster's state.
"""

from repro.tools.fsck import FsckReport, check_cluster
from repro.tools.inspect import (
    cluster_summary,
    engine_report,
    latency_report,
    placement_report,
    protocol_report,
    region_report,
    storage_report,
)

__all__ = [
    "FsckReport",
    "check_cluster",
    "cluster_summary",
    "engine_report",
    "latency_report",
    "placement_report",
    "protocol_report",
    "region_report",
    "storage_report",
]
