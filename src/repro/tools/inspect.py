"""Cluster inspection helpers.

Read-only summaries of a running cluster: which regions exist and
where they live, how full each node's storage hierarchy is, and what
the network has been doing.  Used by operators (and the examples) to
see Khazana's placement decisions.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.daemon import SYSTEM_RID


def cluster_summary(cluster) -> Dict[str, Any]:
    """One dict describing the whole deployment."""
    regions: Dict[int, Dict[str, Any]] = {}
    for node in cluster.node_ids():
        daemon = cluster.daemon(node)
        for rid, desc in daemon.homed_regions.items():
            if rid == SYSTEM_RID:
                continue
            info = regions.setdefault(
                rid,
                {
                    "rid": rid,
                    "length": desc.range.length,
                    "protocol": desc.attrs.protocol,
                    "min_replicas": desc.attrs.min_replicas,
                    "primary_home": desc.primary_home,
                    "homes": list(desc.home_nodes),
                    "cached_on": [],
                },
            )
            if desc.version >= info.get("_version", -1):
                info["_version"] = desc.version
                info["primary_home"] = desc.primary_home
                info["homes"] = list(desc.home_nodes)
    for node in cluster.node_ids():
        daemon = cluster.daemon(node)
        for rid, info in regions.items():
            if daemon.storage.contains(rid):
                info["cached_on"].append(node)
    for info in regions.values():
        info.pop("_version", None)
    latency: Dict[str, Dict[str, float]] = {}
    for node in cluster.node_ids():
        for op, lat in cluster.daemon(node).stats.op_latency.items():
            if not lat.count:
                continue
            agg = latency.setdefault(op, {"count": 0, "total": 0.0,
                                          "max": 0.0})
            agg["count"] += lat.count
            agg["total"] += lat.total
            agg["max"] = max(agg["max"], lat.max)
    for agg in latency.values():
        agg["mean"] = agg.pop("total") / agg["count"]
    tiers: Dict[str, int] = {}
    for node in cluster.node_ids():
        for tier, count in cluster.daemon(node).stats.lookup_tiers.items():
            tiers[tier] = tiers.get(tier, 0) + count
    total_lookups = sum(tiers.values())
    stats = cluster.stats
    return {
        "nodes": len(cluster.node_ids()),
        "virtual_time": cluster.now,
        "placement": cluster.daemon(cluster.node_ids()[0]).placement.name,
        "regions": sorted(regions.values(), key=lambda r: r["rid"]),
        "messages_sent": stats.messages_sent,
        "bytes_sent": stats.bytes_sent,
        "op_latency": {op: latency[op] for op in sorted(latency)},
        "lookup_tiers": {t: tiers[t] for t in sorted(tiers)},
        "tier_hit_rates": {
            t: tiers[t] / total_lookups for t in sorted(tiers)
        } if total_lookups else {},
    }


#: Buckets sampled when sketching ring ownership balance.  Enough for
#: the spread to be statistically meaningful at a few hundred members,
#: small enough that the report stays instant.
SPREAD_SAMPLE_BUCKETS = 4096


def placement_report(cluster) -> Dict[str, Any]:
    """How the placement strategy is spreading the load.

    Per-node strategy snapshots plus cluster-wide aggregates: how many
    regions each node primary-homes, and — for the hash ring — the
    live membership and a sampled ownership spread (how many of
    :data:`SPREAD_SAMPLE_BUCKETS` synthetic buckets each member would
    direct, i.e. how balanced the ring is *before* any data lands).
    """
    nodes: Dict[int, Dict[str, Any]] = {}
    primary_homes: Dict[int, int] = {}
    for node in cluster.node_ids():
        daemon = cluster.daemon(node)
        nodes[node] = daemon.placement.report()
        primary_homes[node] = sum(
            1 for rid, desc in daemon.homed_regions.items()
            if rid != SYSTEM_RID and desc.primary_home == node
        )
    doc: Dict[str, Any] = {
        "strategy": next(iter(nodes.values()))["strategy"] if nodes
        else None,
        "nodes": nodes,
        "primary_homes": primary_homes,
    }
    alive = sorted(
        {m for row in nodes.values()
         for m in row.get("alive_members", [])}
    )
    if alive:
        from repro.core.placement.ring import DirectorTable

        doc["alive_members"] = alive
        doc["ring_spread"] = DirectorTable(
            SPREAD_SAMPLE_BUCKETS, alive
        ).spread()
    return doc


def region_report(cluster, rid: int) -> Dict[str, Any]:
    """Everything the cluster knows about one region."""
    report: Dict[str, Any] = {"rid": rid, "homes": {}, "cached_on": [],
                              "pages": {}}
    for node in cluster.node_ids():
        daemon = cluster.daemon(node)
        desc = daemon.homed_regions.get(rid)
        if desc is not None:
            report["homes"][node] = {
                "version": desc.version,
                "home_nodes": list(desc.home_nodes),
                "allocated": desc.allocated,
            }
            for entry in daemon.page_directory.entries_for_region(rid):
                if entry.homed:
                    report["pages"].setdefault(entry.address, {})[node] = {
                        "owner": entry.owner,
                        "sharers": sorted(entry.sharers),
                    }
        if daemon.storage.contains(rid):
            report["cached_on"].append(node)
    return report


def latency_report(cluster) -> List[Dict[str, Any]]:
    """Per-node request-handling latency, by wire operation.

    Latencies are virtual-clock seconds between a request arriving at
    a node's :class:`~repro.core.router.MessageRouter` and its reply
    (or error reply) being sent, as recorded by the router's latency
    interceptor.  Requests that never got a reply are not counted.
    """
    rows = []
    for node in cluster.node_ids():
        daemon = cluster.daemon(node)
        ops = {
            op: {
                "count": lat.count,
                "mean": lat.mean,
                "max": lat.max,
            }
            for op, lat in sorted(daemon.stats.op_latency.items())
            if lat.count
        }
        rows.append({"node": node, "ops": ops})
    return rows


def engine_report(cluster) -> List[Dict[str, Any]]:
    """Per-node, per-protocol counters from the consistency engines.

    Shows how each protocol used the shared engine: home transactions
    served, batch fan-outs sent, per-page fallbacks after a failed
    batch, and acquire rollbacks.  Nodes that never instantiated a CM
    for a protocol simply have no row for it.
    """
    rows = []
    for node in cluster.node_ids():
        daemon = cluster.daemon(node)
        protocols = {
            protocol: engine.counters.snapshot()
            for protocol, cm in sorted(
                daemon.consistency_managers().items()
            )
            if (engine := getattr(cm, "engine", None)) is not None
        }
        rows.append({"node": node, "protocols": protocols})
    return rows


def schedule_report(schedule: Dict[str, Any]) -> str:
    """Human-readable rendering of an explorer schedule file.

    ``schedule`` is the JSON dict written by
    ``repro.analysis.explore`` when a run violates an invariant: the
    run's configuration, the violation, and the decision trace that
    reproduces it.
    """
    lines = [
        f"schedule v{schedule.get('version', '?')}: "
        f"{schedule.get('protocol', '?')}/{schedule.get('scenario', '?')} "
        f"(seed {schedule.get('seed', '?')}, "
        f"{schedule.get('num_nodes', '?')} nodes, "
        f"strategy {schedule.get('strategy', '?')})",
    ]
    mutations = schedule.get("mutations") or []
    if mutations:
        lines.append("mutations: " + ", ".join(mutations))
    violation = schedule.get("violation") or {}
    lines.append(
        f"violation: {violation.get('rule', '?')}: "
        f"{violation.get('detail', '')}"
    )
    decisions = schedule.get("decisions") or []
    lines.append(f"decisions ({len(decisions)}):")
    for decision in decisions:
        window = decision.get("window") or []
        chosen = decision.get("label", "?")
        marker = ""
        if window and chosen != window[0]:
            marker = f"  (reordered past {window[0]})"
        fault = decision.get("fault")
        if fault:
            marker += f"  [fault: {fault}]"
        lines.append(f"  #{decision.get('index', '?')}: "
                     f"{chosen}{marker}")
    return "\n".join(lines)


def protocol_report(paths=("src/",)) -> Dict[str, Any]:
    """The statically verified view of every consistency protocol.

    Unlike the other reports this one needs no cluster: it runs the
    Layer 5 verifier (:mod:`repro.analysis.protocol`) over the source
    tree and returns, per protocol, the extracted automaton (states
    and declared edges), which KHZ202 invariants were proved, and any
    findings — the same facts ``python -m repro.analysis.protocol``
    prints, as one inspectable dict.
    """
    from repro.analysis import sources
    from repro.analysis.protocol import verify
    from repro.analysis.protocol.coverage import edge_report

    files = sources.collect(list(paths))
    findings, models, proofs = verify(files)
    automata = edge_report(models)
    protocols: Dict[str, Dict[str, Any]] = {}
    for model in models:
        doc = automata[model.protocol]
        protocols[model.protocol] = {
            "class": model.class_name,
            "path": model.path,
            "states": doc["states"],
            "event_edges": doc["event_edges"],
            "invariants": {},
        }
    for proof in proofs:
        entry = protocols.get(proof.protocol)
        if entry is not None:
            entry["invariants"][proof.invariant] = {
                "proved": proof.holds,
                "trace": proof.render(),
            }
    return {
        "files": len(files),
        "protocols": protocols,
        "findings": [
            {"path": f.path, "line": f.line, "rule": f.rule,
             "message": f.message}
            for f in findings
        ],
    }


def storage_report(cluster) -> List[Dict[str, Any]]:
    """Per-node storage-hierarchy utilisation."""
    rows = []
    for node in cluster.node_ids():
        daemon = cluster.daemon(node)
        s = daemon.storage
        rows.append(
            {
                "node": node,
                "ram_used": s.memory.used_bytes(),
                "ram_capacity": s.memory.capacity_bytes,
                "disk_used": s.disk.used_bytes(),
                "disk_capacity": s.disk.capacity_bytes,
                "ram_hit_rate": s.stats.ram_hit_rate(),
                "victimized": s.stats.victimized_to_disk,
                "dirty_pages": len(s.dirty_addresses()),
            }
        )
    return rows
