"""repro — a reproduction of Khazana (Carter, Ranganathan, Susarla;
ICDCS 1998): middleware exporting a distributed, persistent, globally
shared storage space for building distributed services.

Public entry points:

- :func:`repro.api.create_cluster` / :class:`repro.api.Cluster` —
  build a simulated Khazana deployment.
- :class:`repro.core.client.KhazanaSession` — the client library
  (reserve/allocate/lock/read/write/unlock/attributes).
- :mod:`repro.fs` — the wide-area distributed file system of paper
  Section 4.1.
- :mod:`repro.objects` — the distributed object runtime of Section 4.2.
"""

from repro.api import Cluster, create_cluster
from repro.core import (
    ConsistencyLevel,
    KhazanaError,
    LockMode,
    RegionAttributes,
)

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ConsistencyLevel",
    "KhazanaError",
    "LockMode",
    "RegionAttributes",
    "create_cluster",
    "__version__",
]
