"""RAM level of the storage hierarchy: a bounded LRU page cache."""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.core.errors import StorageExhausted
from repro.storage.store import PageStore, StoredPage


class MemoryStore(PageStore):
    """Fixed-capacity in-memory page store with LRU ordering.

    Eviction decisions are made by the hierarchy (which must honour
    pins and invoke consistency actions); this store only *reports* its
    LRU order via :meth:`lru_candidates` and refuses writes beyond
    capacity.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self._capacity = capacity_bytes
        self._pages: "OrderedDict[int, StoredPage]" = OrderedDict()
        self._used = 0
        #: Cached address/LRU snapshots.  The eviction path calls
        #: :meth:`addresses` / :meth:`lru_candidates` in a loop; building
        #: a fresh list per call dominated its cost.  Invalidated on any
        #: mutation (``_lru_view`` also on :meth:`get`, which reorders).
        self._addr_view: Optional[List[int]] = None
        self._lru_view: Optional[List[int]] = None

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    def used_bytes(self) -> int:
        return self._used

    def get(self, address: int) -> Optional[StoredPage]:
        page = self._pages.get(address)
        if page is not None:
            self._pages.move_to_end(address)   # mark most recently used
            self._lru_view = None
        return page

    def peek(self, address: int) -> Optional[StoredPage]:
        """Like :meth:`get` but does not refresh LRU position."""
        return self._pages.get(address)

    def put(self, page: StoredPage) -> None:
        existing = self._pages.get(page.address)
        delta = page.size - (existing.size if existing is not None else 0)
        if self._used + delta > self._capacity:
            raise StorageExhausted(
                f"memory store full: need {delta} bytes, "
                f"{self.free_bytes()} free"
            )
        self._pages[page.address] = page
        self._pages.move_to_end(page.address)
        self._used += delta
        self._lru_view = None
        if existing is None:
            self._addr_view = None

    def remove(self, address: int) -> Optional[StoredPage]:
        page = self._pages.pop(address, None)
        if page is not None:
            self._used -= page.size
            self._addr_view = None
            self._lru_view = None
        return page

    def contains(self, address: int) -> bool:
        return address in self._pages

    def addresses(self) -> List[int]:
        """Resident addresses — a cached view, valid until the next
        mutation; callers must not modify it."""
        view = self._addr_view
        if view is None:
            view = self._addr_view = list(self._pages.keys())
        return view

    def lru_candidates(self) -> List[int]:
        """Page addresses from least to most recently used — a cached
        view, valid until the next mutation or LRU touch; callers must
        not modify it."""
        view = self._lru_view
        if view is None:
            view = self._lru_view = list(self._pages.keys())
        return view

    def __iter__(self):
        return iter(self._pages)

    def __len__(self) -> int:
        return len(self._pages)
