"""Disk level of the storage hierarchy.

Two implementations are provided:

- :class:`DiskStore` — an in-process store with the capacity and cost
  profile of a disk but no actual I/O.  This is the default for tests
  and benchmarks, keeping experiments deterministic (the substitution
  is recorded in DESIGN.md).
- :class:`FileBackedDiskStore` — genuinely persistent, one file per
  page under a spill directory, used by the persistence examples and
  tests to demonstrate that Khazana state survives daemon restarts.

Both report simulated access costs so the daemon can charge virtual
time for disk hits.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.core.errors import StorageExhausted
from repro.storage.store import PageStore, StoredPage

#: Late-90s commodity disk: ~10ms average positioning, ~10 MB/s media.
DISK_SEEK_SECONDS = 0.010
DISK_BYTES_PER_SECOND = 10_000_000


def access_cost(size_bytes: int) -> float:
    """Virtual seconds to read or write one page from/to disk."""
    return DISK_SEEK_SECONDS + size_bytes / DISK_BYTES_PER_SECOND


class DiskStore(PageStore):
    """In-memory stand-in for the on-disk page cache."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self._capacity = capacity_bytes
        self._pages: Dict[int, StoredPage] = {}
        self._used = 0

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    def used_bytes(self) -> int:
        return self._used

    def get(self, address: int) -> Optional[StoredPage]:
        return self._pages.get(address)

    def put(self, page: StoredPage) -> None:
        existing = self._pages.get(page.address)
        delta = page.size - (existing.size if existing is not None else 0)
        if self._used + delta > self._capacity:
            raise StorageExhausted(
                f"disk store full: need {delta} bytes, {self.free_bytes()} free"
            )
        self._pages[page.address] = page
        self._used += delta

    def remove(self, address: int) -> Optional[StoredPage]:
        page = self._pages.pop(address, None)
        if page is not None:
            self._used -= page.size
        return page

    def contains(self, address: int) -> bool:
        return address in self._pages

    def addresses(self) -> List[int]:
        return list(self._pages.keys())


class FileBackedDiskStore(PageStore):
    """Persistent page store: one file per page in ``directory``.

    File names encode the global page address in hex, so a restarted
    daemon can rebuild its page directory by scanning the directory —
    this is what makes Khazana state *persistent* across daemon
    restarts (paper Section 1: "local storage, both volatile (RAM) and
    persistent (disk)").

    Dirty bits are encoded in the filename suffix so that write-back
    state also survives a crash.
    """

    _CLEAN_SUFFIX = ".page"
    _DIRTY_SUFFIX = ".page.dirty"

    def __init__(self, directory: str, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self._capacity = capacity_bytes
        self._directory = directory
        os.makedirs(directory, exist_ok=True)
        self._index: Dict[int, str] = {}   # address -> file path
        self._used = 0
        self._scan()

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    def used_bytes(self) -> int:
        return self._used

    def _scan(self) -> None:
        """Rebuild the index from files left by a previous incarnation."""
        for name in os.listdir(self._directory):
            if name.endswith(self._DIRTY_SUFFIX):
                stem = name[: -len(self._DIRTY_SUFFIX)]
            elif name.endswith(self._CLEAN_SUFFIX):
                stem = name[: -len(self._CLEAN_SUFFIX)]
            else:
                continue
            try:
                address = int(stem, 16)
            except ValueError:
                continue
            path = os.path.join(self._directory, name)
            self._index[address] = path
            self._used += os.path.getsize(path)

    def _path_for(self, address: int, dirty: bool) -> str:
        suffix = self._DIRTY_SUFFIX if dirty else self._CLEAN_SUFFIX
        return os.path.join(self._directory, f"{address:032x}{suffix}")

    def get(self, address: int) -> Optional[StoredPage]:
        path = self._index.get(address)
        if path is None:
            return None
        with open(path, "rb") as fh:
            data = fh.read()
        return StoredPage(
            address=address, data=data, dirty=path.endswith(self._DIRTY_SUFFIX)
        )

    def put(self, page: StoredPage) -> None:
        old_path = self._index.get(page.address)
        old_size = os.path.getsize(old_path) if old_path else 0
        delta = page.size - old_size
        if self._used + delta > self._capacity:
            raise StorageExhausted(
                f"disk store full: need {delta} bytes, {self.free_bytes()} free"
            )
        path = self._path_for(page.address, page.dirty)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(page.data)
        os.replace(tmp, path)
        if old_path and old_path != path:
            os.remove(old_path)
        self._index[page.address] = path
        self._used += delta

    def remove(self, address: int) -> Optional[StoredPage]:
        page = self.get(address)
        path = self._index.pop(address, None)
        if path is not None:
            self._used -= os.path.getsize(path)
            os.remove(path)
        return page

    def contains(self, address: int) -> bool:
        return address in self._index

    def addresses(self) -> List[int]:
        return list(self._index.keys())
