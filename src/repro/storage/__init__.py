"""Local storage hierarchy.

Paper Section 3.4: "Node-local storage is treated as a cache of global
data indexed by global addresses. ... There may be different kinds of
local storage - main memory, disk, local filesystem, tape, etc.,
organized into a storage hierarchy based on access speed, as in xFS.
... In the prototype implementation, there are two levels of local
storage: main memory and on-disk.  When memory is full, the local
storage system can victimize pages from RAM to disk.  When the disk
cache wants to victimize a page, it must invoke the consistency
protocol associated with the page."
"""

from repro.storage.disk import DiskStore, FileBackedDiskStore
from repro.storage.hierarchy import EvictionCallback, StorageHierarchy, StorageStats
from repro.storage.memory import MemoryStore
from repro.storage.store import PageStore, StoredPage

__all__ = [
    "DiskStore",
    "EvictionCallback",
    "FileBackedDiskStore",
    "MemoryStore",
    "PageStore",
    "StorageHierarchy",
    "StorageStats",
    "StoredPage",
]
