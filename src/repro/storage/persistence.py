"""Metadata persistence for daemon restart.

Khazana stores data on "local storage, both volatile (RAM) and
persistent (disk)" (Section 1), and the page directory "maintains
persistent information about pages homed locally" (Section 3.4).  A
daemon configured with a spill directory therefore journals, alongside
its file-backed page store:

- the descriptors of regions it homes (``regions.json``), and
- the authoritative page-directory entries for pages homed locally
  (``pagedir.json``).

After a crash, a restarted daemon reloads both and serves its homed
regions again.  Recovery is deliberately conservative about coherence
state: the restarted home assumes ownership of every homed page and an
empty remote copyset — remote caches from before the crash are treated
as lost, and their nodes will simply re-fetch (stale hints are already
tolerated everywhere else in the system).  Writes that were still
owner-side-only at crash time are lost, the same window the CREW
write-back design has (see crew.py).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.core.page_directory import PageDirectory, PageEntry
from repro.core.region import RegionDescriptor

REGIONS_FILE = "regions.json"
PAGEDIR_FILE = "pagedir.json"


class MetadataJournal:
    """Durable record of a daemon's homed regions and pages."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    # --- Writing ---------------------------------------------------------

    def save_regions(self, homed: Dict[int, RegionDescriptor]) -> None:
        self._atomic_write(
            REGIONS_FILE,
            {"regions": [desc.to_wire() for desc in homed.values()]},
        )

    def save_page_entries(self, directory: PageDirectory) -> None:
        entries = [
            {
                "address": entry.address,
                "rid": entry.rid,
                "allocated": entry.allocated,
                "version": entry.version,
            }
            for entry in directory.homed_entries()
        ]
        self._atomic_write(PAGEDIR_FILE, {"pages": entries})

    def _atomic_write(self, name: str, doc: Dict[str, Any]) -> None:
        path = os.path.join(self.directory, name)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)
        os.replace(tmp, path)

    # --- Reading ----------------------------------------------------------

    def load_regions(self) -> List[RegionDescriptor]:
        doc = self._read(REGIONS_FILE)
        if doc is None:
            return []
        return [RegionDescriptor.from_wire(raw) for raw in doc["regions"]]

    def load_page_entries(self, node_id: int) -> List[PageEntry]:
        """Rebuild homed entries with conservative coherence state:
        this node owns every homed page and nobody else caches it."""
        doc = self._read(PAGEDIR_FILE)
        if doc is None:
            return []
        entries = []
        for raw in doc["pages"]:
            entry = PageEntry(
                address=int(raw["address"]),
                rid=int(raw["rid"]),
                homed=True,
                owner=node_id,
                allocated=bool(raw["allocated"]),
                version=int(raw.get("version", 0)),
            )
            entry.record_sharer(node_id)
            entries.append(entry)
        return entries

    def _read(self, name: str) -> Optional[Dict[str, Any]]:
        path = os.path.join(self.directory, name)
        if not os.path.exists(path):
            return None
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)

    def wipe(self) -> None:
        """Remove the journal files (used when a region is torn down
        everywhere and tests want a clean slate)."""
        for name in (REGIONS_FILE, PAGEDIR_FILE):
            path = os.path.join(self.directory, name)
            if os.path.exists(path):
                os.remove(path)
