"""Page store interface shared by every level of the hierarchy.

The local storage system "provides raw storage for pages without
knowledge of global memory region boundaries or their semantics"
(paper Section 3.4): a store maps a global page base address to bytes
plus a dirty bit, nothing more.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

#: Page contents may be any bytes-like buffer.  The buffer is *frozen*
#: by convention: writers replace a stored page's buffer with a fresh
#: one rather than mutating it in place, so readers (twins, wire
#: payloads) may alias it without copying (docs/performance.md).
PageBytes = Union[bytes, bytearray, memoryview]


@dataclass
class StoredPage:
    """One page held by a store level."""

    address: int       # global base address of the page
    data: PageBytes
    dirty: bool = False

    @property
    def size(self) -> int:
        return len(self.data)


class PageStore(abc.ABC):
    """A single level of the local storage hierarchy (RAM, disk, ...)."""

    @abc.abstractmethod
    def get(self, address: int) -> Optional[StoredPage]:
        """Return the page at ``address`` or None if not resident."""

    @abc.abstractmethod
    def put(self, page: StoredPage) -> None:
        """Insert or replace a page.  Raises ``StorageExhausted`` when
        the level is full and nothing can be displaced (capacity
        management is the hierarchy's job; stores refuse overflow)."""

    @abc.abstractmethod
    def remove(self, address: int) -> Optional[StoredPage]:
        """Remove and return the page, or None if absent."""

    @abc.abstractmethod
    def contains(self, address: int) -> bool:
        """True when a page is resident at this level."""

    @abc.abstractmethod
    def addresses(self) -> List[int]:
        """Base addresses of all resident pages (unordered)."""

    @abc.abstractmethod
    def used_bytes(self) -> int:
        """Bytes of page data currently resident."""

    @property
    @abc.abstractmethod
    def capacity_bytes(self) -> int:
        """Maximum bytes this level may hold."""

    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes()

    def has_room_for(self, size: int) -> bool:
        return self.free_bytes() >= size

    def __iter__(self) -> Iterator[int]:
        return iter(self.addresses())

    def __len__(self) -> int:
        return len(self.addresses())
