"""Two-level RAM/disk storage hierarchy with victimization.

Implements paper Section 3.4's prototype behaviour: "there are two
levels of local storage: main memory and on-disk.  When memory is full,
the local storage system can victimize pages from RAM to disk.  When
the disk cache wants to victimize a page, it must invoke the
consistency protocol associated with the page to update the list of
sharers, push any dirty data to remote nodes, etc."

The hierarchy knows nothing about regions or consistency; the daemon
supplies two callbacks: ``is_pinned`` (locked pages may not be
victimized) and ``on_disk_evict`` (the consistency-protocol hook run
before a page leaves the node entirely).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.errors import StorageExhausted
from repro.storage.disk import DiskStore, access_cost
from repro.storage.memory import MemoryStore
from repro.storage.store import PageStore, StoredPage

#: ``on_disk_evict(page)`` must push dirty data / update sharer lists
#: for ``page`` and return True when the page may now be discarded.
EvictionCallback = Callable[[StoredPage], bool]

#: ``is_pinned(address)`` — True when the page is under an active lock
#: context and must stay resident.
PinCheck = Callable[[int], bool]


@dataclass
class StorageStats:
    """Counters exposed to the C5 storage benchmark."""

    ram_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    victimized_to_disk: int = 0
    evicted_from_disk: int = 0
    simulated_io_seconds: float = 0.0

    def hit_rate(self) -> float:
        total = self.ram_hits + self.disk_hits + self.misses
        if total == 0:
            return 0.0
        return (self.ram_hits + self.disk_hits) / total

    def ram_hit_rate(self) -> float:
        total = self.ram_hits + self.disk_hits + self.misses
        if total == 0:
            return 0.0
        return self.ram_hits / total


class StorageHierarchy:
    """RAM over disk, indexed by global page address."""

    def __init__(
        self,
        memory: Optional[MemoryStore] = None,
        disk: Optional[PageStore] = None,
        is_pinned: Optional[PinCheck] = None,
        on_disk_evict: Optional[EvictionCallback] = None,
    ) -> None:
        self.memory = memory if memory is not None else MemoryStore(64 * 4096)
        self.disk = disk if disk is not None else DiskStore(1024 * 4096)
        self._is_pinned: PinCheck = is_pinned if is_pinned else lambda _addr: False
        self._on_disk_evict: EvictionCallback = (
            on_disk_evict if on_disk_evict else lambda _page: True
        )
        self.stats = StorageStats()

    def set_pin_check(self, is_pinned: PinCheck) -> None:
        self._is_pinned = is_pinned

    def set_evict_callback(self, on_disk_evict: EvictionCallback) -> None:
        self._on_disk_evict = on_disk_evict

    # --- Lookup ------------------------------------------------------------

    def load(self, address: int) -> Tuple[Optional[StoredPage], float]:
        """Fetch a page, promoting disk hits into RAM.

        Returns ``(page, simulated_cost_seconds)``; ``page`` is None on
        a miss (the caller then fetches the page remotely).
        """
        page = self.memory.get(address)
        if page is not None:
            self.stats.ram_hits += 1
            return page, 0.0
        page = self.disk.get(address)
        if page is not None:
            self.stats.disk_hits += 1
            cost = access_cost(page.size)
            self.stats.simulated_io_seconds += cost
            self._promote(page)
            return page, cost
        self.stats.misses += 1
        return None, 0.0

    def load_resident(self, address: int) -> Optional[StoredPage]:
        """RAM-only, zero-cost lookup: the hot-path form of :meth:`load`.

        Counts a RAM hit exactly as :meth:`load` would; a miss is *not*
        counted here — the caller falls back to :meth:`load`, which
        classifies it (disk hit or true miss).
        """
        page = self.memory.get(address)
        if page is not None:
            self.stats.ram_hits += 1
        return page

    def store_resident(self, page: StoredPage) -> bool:
        """Store without victimization: True when the page fit in RAM.

        The hot-path form of :meth:`store` — identical bookkeeping when
        it succeeds, but returns False instead of evicting when RAM is
        full, so callers can fall back to the cost-charging path.
        """
        existing = self.memory.peek(page.address)
        delta = page.size - (existing.size if existing is not None else 0)
        if not self.memory.has_room_for(delta):
            return False
        # Stale duplicate on disk would shadow the fresh RAM copy later.
        self.disk.remove(page.address)
        self.memory.put(page)
        return True

    def contains(self, address: int) -> bool:
        return self.memory.contains(address) or self.disk.contains(address)

    def peek(self, address: int) -> Optional[StoredPage]:
        """Non-promoting lookup used by metadata scans."""
        page = self.memory.peek(address)
        if page is not None:
            return page
        return self.disk.get(address)

    # --- Insertion -----------------------------------------------------------

    def store(self, page: StoredPage) -> float:
        """Place a page in RAM, victimizing colder pages as needed.

        Returns the simulated I/O cost incurred by any victimization.
        Raises :class:`StorageExhausted` if both levels are full of
        pinned/unevictable pages.
        """
        # Stale duplicate on disk would shadow the fresh RAM copy later.
        self.disk.remove(page.address)
        cost = self._make_room_in_memory(page.size, exclude=page.address)
        self.memory.put(page)
        return cost

    def write_through(self, page: StoredPage) -> float:
        """Store and immediately persist to disk (used for metadata the
        node homes, which must survive a restart)."""
        cost = self.store(page)
        persisted = StoredPage(page.address, page.data, dirty=page.dirty)
        room_cost = self._make_room_on_disk(persisted.size, exclude=page.address)
        self.disk.put(persisted)
        io = access_cost(persisted.size)
        self.stats.simulated_io_seconds += io
        return cost + room_cost + io

    # --- Removal ---------------------------------------------------------------

    def drop(self, address: int) -> Optional[StoredPage]:
        """Discard a page from every level (e.g. on invalidation).

        Returns whichever copy was most current, RAM preferred.
        """
        ram = self.memory.remove(address)
        disk = self.disk.remove(address)
        return ram if ram is not None else disk

    def mark_clean(self, address: int) -> None:
        """Clear the dirty bit after a successful write-back."""
        page = self.memory.peek(address)
        if page is not None:
            page.dirty = False
        disk_page = self.disk.get(address)
        if disk_page is not None and disk_page.dirty:
            disk_page.dirty = False
            self.disk.put(disk_page)

    # --- Introspection ------------------------------------------------------------

    def resident_addresses(self) -> List[int]:
        return sorted(set(self.memory.addresses()) | set(self.disk.addresses()))

    def dirty_addresses(self) -> List[int]:
        dirty = []
        for address in self.memory.addresses():
            page = self.memory.peek(address)
            if page is not None and page.dirty:
                dirty.append(address)
        for address in self.disk.addresses():
            if address in dirty:
                continue
            page = self.disk.get(address)
            if page is not None and page.dirty:
                dirty.append(address)
        return sorted(dirty)

    def used_bytes(self) -> int:
        return self.memory.used_bytes() + self.disk.used_bytes()

    # --- Internals ----------------------------------------------------------------

    def _promote(self, page: StoredPage) -> None:
        """Move a disk hit up into RAM (best effort: skipped when RAM is
        entirely pinned)."""
        try:
            self._make_room_in_memory(page.size, exclude=page.address)
        except StorageExhausted:
            return
        self.disk.remove(page.address)
        self.memory.put(page)

    def _make_room_in_memory(self, size: int, exclude: int) -> float:
        cost = 0.0
        guard = len(self.memory) + 1
        while not self.memory.has_room_for(size) and guard > 0:
            guard -= 1
            victim_addr = self._pick_ram_victim(exclude)
            if victim_addr is None:
                raise StorageExhausted(
                    "RAM full and every resident page is pinned"
                )
            victim = self.memory.remove(victim_addr)
            if victim is None:
                continue
            cost += self._make_room_on_disk(victim.size, exclude=exclude)
            self.disk.put(victim)
            io = access_cost(victim.size)
            self.stats.simulated_io_seconds += io
            self.stats.victimized_to_disk += 1
            cost += io
        if not self.memory.has_room_for(size):
            raise StorageExhausted("RAM full and victimization stalled")
        return cost

    def _pick_ram_victim(self, exclude: int) -> Optional[int]:
        for address in self.memory.lru_candidates():
            if address == exclude:
                continue
            if self._is_pinned(address):
                continue
            # Replacing an existing copy of the same page is handled by
            # MemoryStore.put; only true victims reach here.
            return address
        return None

    def _make_room_on_disk(self, size: int, exclude: int) -> float:
        cost = 0.0
        guard = len(self.disk) + 1
        while not self.disk.has_room_for(size) and guard > 0:
            guard -= 1
            victim_addr = self._pick_disk_victim(exclude)
            if victim_addr is None:
                raise StorageExhausted(
                    "disk full and no page may be evicted"
                )
            victim = self.disk.get(victim_addr)
            if victim is None:
                continue
            # Paper 3.4: disk eviction must first run the page's
            # consistency protocol (push dirty data, fix sharer lists).
            if not self._on_disk_evict(victim):
                raise StorageExhausted(
                    f"consistency protocol vetoed eviction of page "
                    f"{victim_addr:#x}"
                )
            self.disk.remove(victim_addr)
            self.stats.evicted_from_disk += 1
            cost += access_cost(victim.size)
        if not self.disk.has_room_for(size):
            raise StorageExhausted("disk full and eviction stalled")
        return cost

    def _pick_disk_victim(self, exclude: int) -> Optional[int]:
        for address in self.disk.addresses():
            if address == exclude:
                continue
            if self._is_pinned(address):
                continue
            return address
        return None
