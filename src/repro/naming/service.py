"""The name service implementation.

Layout: every directory context ("/", "/org", "/org/eng", ...) is one
4 KiB Khazana region holding a JSON document with two maps — ``bindings``
(leaf name -> attribute dict) and ``children`` (context name -> region
address of the child context).  The service handle is just the root
context's Khazana address, so any node can attach to an existing
directory tree the same way a KFS mount works from a superblock.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.client import KhazanaSession
from repro.core.locks import LockMode

CONTEXT_SIZE = 4096
MAGIC = "KNS1"


class NamingError(Exception):
    """Errors raised by the name service."""


class NameNotFound(NamingError):
    """The requested name is not bound."""


def _split(name: str) -> List[str]:
    if not name.startswith("/"):
        raise NamingError(f"name {name!r} must be absolute")
    parts = [p for p in name.split("/") if p]
    if not parts:
        raise NamingError("the root context itself cannot be bound")
    for part in parts:
        if len(part) > 128:
            raise NamingError(f"name component {part!r} too long")
    return parts


def _encode(doc: Dict[str, Any]) -> bytes:
    blob = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    if len(blob) > CONTEXT_SIZE:
        raise NamingError(
            f"directory context overflow ({len(blob)} bytes); "
            "split entries across sub-contexts"
        )
    return blob + b"\x00" * (CONTEXT_SIZE - len(blob))


def _decode(data: bytes) -> Dict[str, Any]:
    blob = data.rstrip(b"\x00")
    if not blob:
        return {"magic": MAGIC, "bindings": {}, "children": {}}
    doc = json.loads(blob.decode("utf-8"))
    if doc.get("magic") != MAGIC:
        raise NamingError("not a name-service context")
    return doc


class NameService:
    """One client's handle on a distributed directory tree."""

    def __init__(self, session: KhazanaSession, root_addr: int,
                 consistency: ConsistencyLevel) -> None:
        self.session = session
        self.root_addr = root_addr
        self.consistency = consistency

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        session: KhazanaSession,
        consistency: ConsistencyLevel = ConsistencyLevel.EVENTUAL,
        replicas: int = 1,
    ) -> "NameService":
        """Create a new directory tree; returns an attached service."""
        service = cls(session, 0, consistency)
        service._replicas = replicas
        root = service._new_context()
        service.root_addr = root
        return service

    @classmethod
    def attach(cls, session: KhazanaSession, root_addr: int) -> "NameService":
        """Attach to an existing tree by its root address."""
        doc = _decode(session.read_at(root_addr, CONTEXT_SIZE))
        service = cls(
            session, root_addr,
            ConsistencyLevel(doc.get("consistency", "eventual")),
        )
        service._replicas = int(doc.get("replicas", 1))
        return service

    _replicas = 1

    def _new_context(self) -> int:
        region = self.session.reserve(
            CONTEXT_SIZE,
            RegionAttributes(
                consistency_level=self.consistency,
                min_replicas=self._replicas,
            ),
        )
        self.session.allocate(region.rid)
        self.session.write_at(
            region.rid,
            _encode({
                "magic": MAGIC,
                "bindings": {},
                "children": {},
                "consistency": self.consistency.value,
                "replicas": self._replicas,
            }),
        )
        return region.rid

    # ------------------------------------------------------------------
    # Context access
    # ------------------------------------------------------------------

    def _read_context(self, addr: int) -> Dict[str, Any]:
        return _decode(self.session.read_at(addr, CONTEXT_SIZE))

    def _update_context(self, addr: int, mutate) -> Any:
        """Read-modify-write one context under a single write lock."""
        ctx = self.session.lock(addr, CONTEXT_SIZE, LockMode.WRITE)
        try:
            doc = _decode(self.session.read(ctx, addr, CONTEXT_SIZE))
            result = mutate(doc)
            self.session.write(ctx, addr, _encode(doc))
            return result
        finally:
            self.session.unlock(ctx)

    def _resolve_context(self, parts: List[str],
                         create_missing: bool) -> int:
        """Walk to the context holding the last component's binding."""
        addr = self.root_addr
        for part in parts[:-1]:
            doc = self._read_context(addr)
            child = doc["children"].get(part)
            if child is None:
                if not create_missing:
                    raise NameNotFound(
                        f"context {part!r} does not exist"
                    )
                child_addr = self._new_context()

                def link(doc: Dict[str, Any]) -> int:
                    existing = doc["children"].get(part)
                    if existing is not None:
                        return int(existing)   # raced another creator
                    doc["children"][part] = child_addr
                    return child_addr

                child = self._update_context(addr, link)
                if child != child_addr:
                    # Lost the race: release the orphan context.
                    self.session.unreserve(child_addr)
            addr = int(child)
        return addr

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def bind(self, name: str, attributes: Dict[str, Any],
             replace: bool = False) -> None:
        """Bind ``name`` to an attribute dictionary.

        Intermediate contexts are created on demand (like `mkdir -p`).
        Without ``replace``, binding an existing name raises.
        """
        parts = _split(name)
        context = self._resolve_context(parts, create_missing=True)
        leaf = parts[-1]

        def mutate(doc: Dict[str, Any]) -> None:
            if not replace and leaf in doc["bindings"]:
                raise NamingError(f"name {name!r} is already bound")
            if leaf in doc["children"]:
                raise NamingError(f"{name!r} is a context, not a binding")
            doc["bindings"][leaf] = attributes

        self._update_context(context, mutate)

    def rebind(self, name: str, attributes: Dict[str, Any]) -> None:
        """Bind, replacing any existing binding."""
        self.bind(name, attributes, replace=True)

    def lookup(self, name: str) -> Dict[str, Any]:
        """Resolve a name to its attributes."""
        parts = _split(name)
        context = self._resolve_context(parts, create_missing=False)
        doc = self._read_context(context)
        attrs = doc["bindings"].get(parts[-1])
        if attrs is None:
            raise NameNotFound(f"name {name!r} is not bound")
        return attrs

    def unbind(self, name: str) -> None:
        """Remove a binding."""
        parts = _split(name)
        context = self._resolve_context(parts, create_missing=False)
        leaf = parts[-1]

        def mutate(doc: Dict[str, Any]) -> None:
            if leaf not in doc["bindings"]:
                raise NameNotFound(f"name {name!r} is not bound")
            del doc["bindings"][leaf]

        self._update_context(context, mutate)

    def list(self, context_name: str = "/") -> Tuple[List[str], List[str]]:
        """Names bound in a context: (bindings, sub-contexts)."""
        if context_name == "/":
            addr = self.root_addr
        else:
            parts = _split(context_name)
            parent = self._resolve_context(parts, create_missing=False)
            doc = self._read_context(parent)
            child = doc["children"].get(parts[-1])
            if child is None:
                raise NameNotFound(
                    f"context {context_name!r} does not exist"
                )
            addr = int(child)
        doc = self._read_context(addr)
        return sorted(doc["bindings"]), sorted(doc["children"])

    def exists(self, name: str) -> bool:
        try:
            self.lookup(name)
            return True
        except NamingError:
            return False
