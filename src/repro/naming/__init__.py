"""A distributed directory service built on Khazana.

The paper's opening list of systems that "boil down to the problem of
managing distributed shared state" leads with distributed file systems
and *distributed directory services* (Novell's NDS, Microsoft's Active
Directory).  Section 4 builds the file system; this package builds the
directory service, making the paper's point a third time: the service
itself contains no distribution code, just Khazana reads and writes.

Design notes (and how they differ from KFS):

- Entries are hierarchical names bound to small attribute dictionaries
  (a user record, a printer's address, ...), not byte streams.
- Directory services are read-dominated and latency-sensitive, so the
  default consistency is the *eventual* protocol — a lookup served
  from a slightly stale replica is fine (the paper: such applications
  "can tolerate data that is temporarily out-of-date ... as long as
  they get fast response").  ``ConsistencyLevel.STRICT`` can be chosen
  at creation for registries that need it.
"""

from repro.naming.service import NameNotFound, NameService, NamingError

__all__ = ["NameNotFound", "NameService", "NamingError"]
