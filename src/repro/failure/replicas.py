"""Replica maintenance and home-node failover.

"Khazana allows clients to specify a minimum number of primary
replicas that should be maintained for each page in a Khazana region.
This functionality further enhances availability, at a cost of
resource consumption." (paper Section 3.5)

A region with ``min_replicas = N`` is reserved with N home nodes; the
consistency protocols keep all home copies current at lock release.
This module repairs the invariant after failures:

- **Promotion** — when a region's primary home dies, the first alive
  home in the descriptor's home list takes over as acting primary and
  publishes a descriptor that lists itself first.
- **Recruitment** — when fewer than N homes are alive, the acting
  primary recruits replacement nodes, pushes every allocated page to
  them (REPLICA_CREATE), and publishes an updated descriptor and
  address-map entry.

Stale cached descriptors elsewhere still name the dead primary first;
requesters simply fail over down the home list (every protocol's
``_home_request`` loop), then pick up the fresh descriptor on their
next lookup — the paper's "stale hints are harmless" posture.
"""

from __future__ import annotations

from typing import Any, Generator, List, Set

from repro.net.message import Message, MessageType
from repro.net.rpc import RetryPolicy
from repro.net.tasks import Future, gather_settled

ProtocolGen = Generator[Future, Any, Any]

PUSH_POLICY = RetryPolicy(timeout=2.0, retries=1, backoff=2.0)

#: How often each daemon checks its homed regions, in virtual seconds.
DEFAULT_PERIOD = 2.0


class ReplicaMaintainer:
    """Keeps every homed region at its minimum replica count."""

    def __init__(self, daemon: Any, period: float = DEFAULT_PERIOD) -> None:
        self.daemon = daemon
        self.period = period
        self._repairing: Set[int] = set()
        self._running = False
        self.repairs_completed = 0
        self.promotions = 0

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule()

    def stop(self) -> None:
        self._running = False

    def _schedule(self) -> None:
        if not self._running:
            return
        self.daemon.runtime.call_later(
            self.period, self._tick,
            label=f"n{self.daemon.node_id}:replica-maintenance",
        )

    def _tick(self) -> None:
        if not self._running:
            return
        for desc in list(self.daemon.homed_regions.values()):
            self._check_region(desc)
        self._schedule()

    # ------------------------------------------------------------------

    def _check_region(self, desc: Any) -> None:
        me = self.daemon.node_id
        detector = self.daemon.detector
        alive_homes = [
            home for home in desc.home_nodes if detector.is_alive(home)
        ]
        if not alive_homes or alive_homes[0] != me:
            return   # a better-placed home is (or will be) acting primary
        needs_promotion = desc.primary_home != me
        short = max(0, desc.attrs.min_replicas - len(alive_homes))
        if not needs_promotion and short == 0:
            return
        if desc.rid in self._repairing:
            return
        self._repairing.add(desc.rid)
        task = self._repair(desc, alive_homes, short)
        outcome = self.daemon.spawn(task, label=f"repair:{desc.rid:#x}")
        outcome.add_callback(
            lambda _f: self._repairing.discard(desc.rid)
        )

    def _repair(self, desc: Any, alive_homes: List[int], short: int) -> ProtocolGen:
        me = self.daemon.node_id
        recruits: List[int] = []
        if short > 0:
            candidates = [
                node for node in self.daemon.detector.alive_peers()
                if node not in alive_homes
            ]
            recruits = candidates[:short]
            for recruit in recruits:
                yield from self._push_region_to(desc, recruit)

        new_homes = tuple(
            [me]
            + [h for h in alive_homes if h != me]
            + recruits
        )
        if new_homes == desc.home_nodes and not recruits:
            return
        if desc.primary_home != me:
            self.promotions += 1
        new_desc = desc.with_homes(new_homes)
        self.daemon.adopt_descriptor(new_desc)
        self.repairs_completed += 1

        # Publish: peers' directories and the address map learn the new
        # home list.  Both are hint layers — failure here only delays
        # rediscovery — so errors are swallowed by the retry queue.
        for node in new_homes:
            if node == me:
                continue
            self.daemon.rpc.send(
                Message(
                    msg_type=MessageType.DESCRIPTOR_UPDATE,
                    src=me,
                    dst=node,
                    payload={"descriptor": new_desc.to_wire()},
                )
            )
        manager = self.daemon.cluster_manager_node
        if manager is not None and manager != me:
            self.daemon.rpc.send(
                Message(
                    msg_type=MessageType.DESCRIPTOR_UPDATE,
                    src=me,
                    dst=manager,
                    payload={"descriptor": new_desc.to_wire()},
                )
            )
        self.daemon.retry_queue.enqueue(
            lambda: self.daemon.address_map.update_homes(
                new_desc.range, new_homes
            ),
            label=f"map-homes:{desc.rid:#x}",
        )

    def _push_region_to(self, desc: Any, recruit: int) -> ProtocolGen:
        """Copy every allocated page of ``desc`` to ``recruit``."""
        pushes = []
        for entry in self.daemon.page_directory.entries_for_region(desc.rid):
            if not entry.allocated:
                continue
            data = yield from self.daemon.local_page_bytes(desc, entry.address)
            if data is None:
                continue
            pushes.append(
                self.daemon.rpc.request(
                    recruit,
                    MessageType.REPLICA_CREATE,
                    {
                        "rid": desc.rid,
                        "page": entry.address,
                        "data": data,
                        "descriptor": desc.to_wire(),
                    },
                    policy=PUSH_POLICY,
                )
            )
        if pushes:
            yield gather_settled(pushes, label="replica-push")
