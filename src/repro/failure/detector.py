"""Ping-based failure detection.

Khazana needs to know which peers are reachable so that operations can
be "repeatedly tried on all known Khazana nodes" (Section 3.5), so
copysets can shed crashed sharers, and so replica maintenance can
re-replicate under-copied pages.  Each daemon runs a detector that
pings every known peer on a period and declares a peer dead after a
configurable number of consecutive missed pongs.  Recovery (a pong
from a dead peer) is also reported, supporting nodes that "dynamically
enter and leave Khazana" (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.net.clock import EventHandle, EventScheduler
from repro.net.message import Message, MessageType
from repro.net.rpc import RetryPolicy, RpcEndpoint

#: One quick retransmission per ping; the miss counter provides the
#: real tolerance.
PING_POLICY = RetryPolicy(timeout=0.5, retries=1, backoff=1.0)

DeathListener = Callable[[int], None]
RecoveryListener = Callable[[int], None]


@dataclass
class PeerHealth:
    node_id: int
    alive: bool = True
    consecutive_misses: int = 0
    last_heard: float = 0.0


class FailureDetector:
    """Per-daemon ping/pong failure detector."""

    def __init__(
        self,
        rpc: RpcEndpoint,
        scheduler: EventScheduler,
        peers: List[int],
        period: float = 1.0,
        miss_threshold: int = 3,
    ) -> None:
        self.rpc = rpc
        self.scheduler = scheduler
        self.period = period
        self.miss_threshold = miss_threshold
        self._peers: Dict[int, PeerHealth] = {
            node: PeerHealth(node_id=node) for node in peers
            if node != rpc.node_id
        }
        #: When set, only these peers are actively pinged (ring-
        #: successor-style focused liveness); None pings everyone.
        self._focus: Optional[List[int]] = None
        self._on_death: List[DeathListener] = []
        self._on_recovery: List[RecoveryListener] = []
        self._timer: Optional[EventHandle] = None
        self._running = False
        rpc.on(MessageType.PING, self._handle_ping)

    # --- Lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_round()

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # --- Membership -------------------------------------------------------

    def add_peer(self, node_id: int) -> None:
        if node_id != self.rpc.node_id and node_id not in self._peers:
            self._peers[node_id] = PeerHealth(node_id=node_id)

    def remove_peer(self, node_id: int) -> None:
        self._peers.pop(node_id, None)

    def set_focus(self, peers: Optional[List[int]]) -> None:
        """Restrict active pinging to ``peers`` (ring-successor-style:
        each member watches only its few ring successors, so liveness
        traffic stays O(1) per member as the system grows).  Deaths of
        unfocused peers arrive through :meth:`declare_dead` — e.g.
        gossiped membership updates.  ``None`` restores all-peer
        pinging."""
        self._focus = None if peers is None else list(peers)

    def declare_dead(self, node_id: int) -> None:
        """Administratively mark a peer dead (clean departure): death
        listeners fire immediately instead of waiting out the pings."""
        peer = self._peers.get(node_id)
        if peer is None or not peer.alive:
            return
        peer.alive = False
        peer.consecutive_misses = self.miss_threshold
        for listener in self._on_death:
            listener(node_id)

    def declare_alive(self, node_id: int) -> None:
        """Administratively mark a peer alive (e.g. a membership join
        or gossip vouched for it): recovery listeners fire immediately
        instead of waiting for this node's own pings — which, under
        focused pinging, may never probe the peer at all."""
        if node_id == self.rpc.node_id:
            return
        peer = self._peers.get(node_id)
        if peer is None:
            self.add_peer(node_id)
            return
        if peer.alive:
            return
        peer.alive = True
        peer.consecutive_misses = 0
        for listener in self._on_recovery:
            listener(node_id)

    def alive_peers(self) -> List[int]:
        return sorted(p.node_id for p in self._peers.values() if p.alive)

    def dead_peers(self) -> List[int]:
        return sorted(p.node_id for p in self._peers.values() if not p.alive)

    def is_alive(self, node_id: int) -> bool:
        if node_id == self.rpc.node_id:
            return True
        peer = self._peers.get(node_id)
        return peer.alive if peer is not None else True

    # --- Listeners ------------------------------------------------------------

    def on_death(self, listener: DeathListener) -> None:
        self._on_death.append(listener)

    def on_recovery(self, listener: RecoveryListener) -> None:
        self._on_recovery.append(listener)

    # --- Internals --------------------------------------------------------------

    def _schedule_round(self) -> None:
        if not self._running:
            return
        self._timer = self.scheduler.call_later(
            self.period, self._round,
            label=f"n{self.rpc.node_id}:failure-detector",
        )

    def _round(self) -> None:
        if not self._running:
            return
        targets = list(self._peers.values())
        if self._focus is not None:
            focus = set(self._focus)
            targets = [peer for peer in targets if peer.node_id in focus]
        for peer in targets:
            future = self.rpc.request(
                peer.node_id, MessageType.PING, {}, policy=PING_POLICY
            )
            future.add_callback(
                lambda f, node=peer.node_id: self._on_ping_done(node, f)
            )
        self._schedule_round()

    def _on_ping_done(self, node_id: int, future) -> None:
        peer = self._peers.get(node_id)
        if peer is None:
            return
        if future.exception() is None:
            peer.consecutive_misses = 0
            peer.last_heard = self.scheduler.now
            if not peer.alive:
                peer.alive = True
                for listener in self._on_recovery:
                    listener(node_id)
            return
        peer.consecutive_misses += 1
        if peer.alive and peer.consecutive_misses >= self.miss_threshold:
            peer.alive = False
            for listener in self._on_death:
                listener(node_id)

    def _handle_ping(self, msg: Message) -> None:
        self.rpc.reply(msg, MessageType.PONG, {})
