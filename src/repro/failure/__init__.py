"""Failure handling.

Paper Section 3.5: "Khazana is designed to cope with node and network
failures.  Khazana operations are repeatedly tried on all known
Khazana nodes until they succeed or timeout.  All errors encountered
while acquiring resources ... are reflected back to the original
client, while errors encountered while releasing resources ... are
not.  Instead, the Khazana system keeps trying the operation in the
background until it succeeds."
"""

from repro.failure.detector import FailureDetector
from repro.failure.replicas import ReplicaMaintainer
from repro.failure.retry import RetryQueue

__all__ = ["FailureDetector", "ReplicaMaintainer", "RetryQueue"]
