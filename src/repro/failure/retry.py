"""Background retry of release-type operations.

"All errors encountered while acquiring resources (e.g., reserve,
allocate, lock, read, write) are reflected back to the original
client, while errors encountered while releasing resources (unreserve,
deallocate, unlock) are not.  Instead, the Khazana system keeps trying
the operation in the background until it succeeds." (paper Section 3.5)

The queue holds *factories* of protocol generators; each attempt gets
a fresh generator.  Failed attempts are rescheduled with exponential
backoff up to a cap, forever (the paper gives no give-up bound, and
neither do we — a permanently failed release op keeps a queue slot,
visible through :attr:`pending`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List

from repro.net.clock import EventScheduler
from repro.net.tasks import Future

GenFactory = Callable[[], Generator[Future, Any, Any]]

INITIAL_BACKOFF = 0.5
MAX_BACKOFF = 30.0


@dataclass
class _RetryItem:
    factory: GenFactory
    label: str
    attempts: int = 0
    backoff: float = INITIAL_BACKOFF


@dataclass
class RetryStats:
    enqueued: int = 0
    succeeded: int = 0
    failed_attempts: int = 0


class RetryQueue:
    """Retries release-type operations until they succeed."""

    def __init__(
        self,
        scheduler: EventScheduler,
        spawn: Callable[[Generator, str], Future],
    ) -> None:
        self._scheduler = scheduler
        self._spawn = spawn
        self._items: Dict[int, _RetryItem] = {}
        self._next_id = 0
        self.stats = RetryStats()

    @property
    def pending(self) -> int:
        """Operations still awaiting a successful attempt."""
        return len(self._items)

    def labels(self) -> List[str]:
        return sorted(item.label for item in self._items.values())

    def enqueue(self, factory: GenFactory, label: str = "release-op") -> int:
        """Add an operation; the first attempt runs on the next tick."""
        item_id = self._next_id
        self._next_id += 1
        item = _RetryItem(factory=factory, label=label)
        self._items[item_id] = item
        self.stats.enqueued += 1
        self._scheduler.call_soon(lambda: self._attempt(item_id),
                                  label=f"retry-first:{label}")
        return item_id

    def cancel(self, item_id: int) -> bool:
        return self._items.pop(item_id, None) is not None

    def _attempt(self, item_id: int) -> None:
        item = self._items.get(item_id)
        if item is None:
            return
        item.attempts += 1
        outcome = self._spawn(item.factory(), f"retry:{item.label}")
        outcome.add_callback(lambda f: self._on_done(item_id, f))

    def _on_done(self, item_id: int, outcome: Future) -> None:
        item = self._items.get(item_id)
        if item is None:
            return
        if outcome.exception() is None:
            del self._items[item_id]
            self.stats.succeeded += 1
            return
        self.stats.failed_attempts += 1
        delay = item.backoff
        item.backoff = min(item.backoff * 2.0, MAX_BACKOFF)
        self._scheduler.call_later(delay, lambda: self._attempt(item_id),
                                   label=f"retry-backoff:{item.label}")
