#!/usr/bin/env python
"""Operating a live Khazana deployment: elasticity, migration, fsck.

A day-two-operations tour: run a workload, inspect placement, grow the
cluster, move a hot region to its heaviest user, retire a node, and
verify every global invariant with fsck afterwards.

Run:  python examples/operations.py
"""

from repro import api
from repro.core import RegionAttributes
from repro.tools import check_cluster, cluster_summary, storage_report


def main() -> None:
    cluster = api.create_cluster(num_nodes=4)

    # A replicated region, busy from node 3.
    owner = cluster.client(node=1)
    region = owner.reserve(16 * 4096, RegionAttributes(min_replicas=2))
    owner.allocate(region.rid)
    owner.write_at(region.rid, b"operational data")
    hot_user = cluster.client(node=3)
    for i in range(20):
        hot_user.write_at(region.rid, f"update {i:02d}".encode())
    cluster.run(2.0)

    summary = cluster_summary(cluster)
    info = summary["regions"][0]
    print(f"region {info['rid']:#x}: homes={info['homes']}, "
          f"cached on {info['cached_on']}")
    print(f"traffic so far: {summary['messages_sent']} messages")

    # The region's traffic is dominated by node 3 — move it there.
    moved = owner.migrate(region.rid, 3)
    print(f"\nmigrated primary home {region.primary_home} -> "
          f"{moved.primary_home}")

    # Scale out: a new machine joins the running system...
    fresh = cluster.add_node()
    cluster.run(2.0)
    newcomer = cluster.client(node=fresh.node_id)
    print(f"node {fresh.node_id} joined; it reads:",
          newcomer.read_at(region.rid, 9))

    # ...and an old one retires cleanly.  Replica maintenance restores
    # the region's redundancy automatically.
    cluster.remove_node(1)
    cluster.run(10.0)
    survivor_desc = cluster.daemon(3).homed_regions[region.rid]
    print(f"after node 1 left: homes={list(survivor_desc.home_nodes)}")

    print("\nper-node storage:")
    for row in storage_report(cluster):
        print(f"  node {row['node']}: RAM {row['ram_used']}/"
              f"{row['ram_capacity']}B, victimized {row['victimized']}, "
              f"RAM hit rate {row['ram_hit_rate']:.0%}")

    report = check_cluster(cluster)
    print(f"\nfsck: {'CLEAN' if report.ok else 'PROBLEMS'} — "
          f"{report.checked_map_entries} map entries, "
          f"{report.checked_regions} regions, "
          f"{report.checked_pages} pages checked")
    for warning in report.warnings:
        print("  note:", warning)


if __name__ == "__main__":
    main()
