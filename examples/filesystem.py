#!/usr/bin/env python
"""A wide-area distributed file system in ~0 lines of distribution code.

Reproduces the Section 4.1 scenario: a file server written against
plain file-system operations becomes a *clustered* file server simply
because its storage is Khazana.  Three "sites" (nodes 1, 2, 3) mount
the same superblock; writes anywhere are visible everywhere; and with
``replicas=2`` the tree survives the death of its creating node.

Run:  python examples/filesystem.py
"""

from repro import api
from repro.core import ConsistencyLevel
from repro.fs import KhazanaFileSystem


def main() -> None:
    cluster = api.create_cluster(num_nodes=6)

    # Site 1 formats the file system.  Only the superblock address is
    # needed to mount it elsewhere ("Mounting this filesystem only
    # requires the Khazana address of the superblock").
    site1 = KhazanaFileSystem.format(
        cluster.client(node=1),
        consistency=ConsistencyLevel.STRICT,
        replicas=2,
    )
    print(f"formatted KFS; superblock at {site1.superblock_addr:#x}")

    site1.mkdir("/wiki")
    with site1.create("/wiki/front-page.md") as f:
        f.write(b"# Welcome\nEdited at site 1.\n")

    # Sites 2 and 3 mount the same file system.
    site2 = KhazanaFileSystem.mount(cluster.client(node=2),
                                    site1.superblock_addr)
    site3 = KhazanaFileSystem.mount(cluster.client(node=3),
                                    site1.superblock_addr)

    with site2.open("/wiki/front-page.md", "a") as f:
        f.write(b"Edited at site 2.\n")
    with site3.open("/wiki/front-page.md", "a") as f:
        f.write(b"Edited at site 3.\n")

    print("\nfront page as site 1 sees it:")
    with site1.open("/wiki/front-page.md") as f:
        print(f.read().decode())

    # A large multi-block artifact.
    payload = bytes(i % 256 for i in range(48 * 1024))
    with site2.create("/wiki/build-artifact.bin") as f:
        f.write(payload)
    st = site3.stat("/wiki/build-artifact.bin")
    print(f"artifact: {st.size} bytes in {len(st.blocks)} block regions")
    with site3.open("/wiki/build-artifact.bin") as f:
        assert f.read() == payload
    print("artifact verified from site 3")

    # Kill the creating site; replicas keep the data available
    # ("The failure of one filesystem instance will not cause the
    # entire filesystem to become unavailable").
    cluster.run(2.0)
    cluster.crash(1)
    cluster.run(15.0)
    site5 = KhazanaFileSystem.mount(cluster.client(node=5),
                                    site1.superblock_addr)
    print("\nafter site 1 crashed, site 5 still reads:")
    with site5.open("/wiki/front-page.md") as f:
        print(f.read().decode())
    print("directory listing:", site5.listdir("/wiki"))


if __name__ == "__main__":
    main()
