#!/usr/bin/env python
"""A wide-area web cache on bounded-staleness consistency.

Section 3.3 of the paper motivates relaxed protocols with "applications
such as web caches ... [that] can tolerate data that is temporarily
out-of-date (i.e., one or two versions old) as long as they get fast
response".  This example builds exactly that consumer: an origin node
publishes documents into eventually-consistent regions; edge nodes on
slow WAN links serve reads from local replicas at LAN-free cost, and
pick up new versions within the staleness bound.

Run:  python examples/web_cache.py
"""

from repro import api
from repro.core import ConsistencyLevel, RegionAttributes

DOC_SIZE = 4096


class EdgeCache:
    """A web cache edge: serves documents out of global memory."""

    def __init__(self, session):
        self.session = session
        self.catalog = {}   # url -> region id

    def publish(self, url: str, body: bytes) -> int:
        region = self.session.reserve(
            DOC_SIZE,
            RegionAttributes(consistency_level=ConsistencyLevel.EVENTUAL),
        )
        self.session.allocate(region.rid)
        self.session.write_at(region.rid, body.ljust(DOC_SIZE, b"\x00"))
        self.catalog[url] = region.rid
        return region.rid

    def update(self, url: str, body: bytes) -> None:
        self.session.write_at(self.catalog[url],
                              body.ljust(DOC_SIZE, b"\x00"))

    def get(self, url: str, rid: int) -> bytes:
        return self.session.read_at(rid, DOC_SIZE).rstrip(b"\x00")


def main() -> None:
    # Origin (node 0's cluster) and edges separated by WAN links.
    cluster = api.create_cluster(num_nodes=6, topology="two_cluster")
    origin = EdgeCache(cluster.client(node=1))
    edges = {node: EdgeCache(cluster.client(node=node)) for node in (3, 4, 5)}

    rid = origin.publish("/index.html", b"<h1>v1: hello from the origin</h1>")
    print("published /index.html")

    # Cold fetch at each edge: crosses the WAN once.
    for node, edge in edges.items():
        t0 = cluster.now
        body = edge.get("/index.html", rid)
        print(f"edge {node}: cold fetch {1000 * (cluster.now - t0):6.1f} ms"
              f" -> {body.decode()}")

    # Hot fetches: served from the local replica, no WAN crossing.
    for node, edge in edges.items():
        t0 = cluster.now
        edge.get("/index.html", rid)
        print(f"edge {node}: hot fetch  {1000 * (cluster.now - t0):6.1f} ms")

    # The origin publishes v2; edges may serve v1 briefly (bounded
    # staleness), then converge.
    origin.update("/index.html", b"<h1>v2: fresh content</h1>")
    body = edges[3].get("/index.html", rid)
    print(f"\nright after update, edge 3 serves: {body.decode()!r}")
    cluster.run(3.0)   # past the staleness bound / anti-entropy
    for node, edge in edges.items():
        print(f"after bound, edge {node} serves: "
              f"{edge.get('/index.html', rid).decode()!r}")

    # Availability: the origin dies; edges keep serving stale content.
    cluster.crash(1)
    cluster.run(5.0)
    print("\norigin crashed; edge 4 still serves:",
          edges[4].get("/index.html", rid).decode())


if __name__ == "__main__":
    main()
