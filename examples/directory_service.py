#!/usr/bin/env python
"""A distributed directory service (the paper's NDS/Active Directory
motivation) with per-subtree consistency choices.

The company registry lives in one Khazana-backed name service:

- ``/users`` and ``/printers`` are read-mostly and latency-sensitive —
  they ride the *eventual* protocol, so every site answers lookups
  from a local replica;
- a second, strictly consistent tree holds ``/leases`` — ownership
  records that must never be read stale.

Run:  python examples/directory_service.py
"""

from repro import api
from repro.core import ConsistencyLevel
from repro.naming import NameService


def main() -> None:
    cluster = api.create_cluster(num_nodes=6, topology="two_cluster")

    # Site A (node 1) creates the read-mostly registry.
    registry = NameService.create(
        cluster.client(node=1),
        consistency=ConsistencyLevel.EVENTUAL,
    )
    registry.bind("/users/alice", {"uid": 1000, "site": "A"})
    registry.bind("/users/bob", {"uid": 1001, "site": "B"})
    registry.bind("/printers/laser-3f", {"room": "3.14", "ppm": 40})

    # A strictly consistent tree for lease/ownership records.
    leases = NameService.create(
        cluster.client(node=1),
        consistency=ConsistencyLevel.STRICT,
    )
    leases.bind("/build-farm", {"holder": "site-A"})

    # Site B (node 4, across the WAN) attaches to both trees.
    site_b_registry = NameService.attach(
        cluster.client(node=4), registry.root_addr
    )
    site_b_leases = NameService.attach(
        cluster.client(node=4), leases.root_addr
    )

    print("site B resolves alice:", site_b_registry.lookup("/users/alice"))

    # Cold vs warm lookups at site B: the first resolution drags the
    # context pages across the WAN; repeats are served locally.
    t0 = cluster.now
    site_b_registry.lookup("/printers/laser-3f")
    cold = cluster.now - t0
    t0 = cluster.now
    site_b_registry.lookup("/printers/laser-3f")
    warm = cluster.now - t0
    print(f"site B printer lookup: cold {cold * 1000:.1f} ms, "
          f"warm {warm * 1000:.2f} ms (local replica)")

    # Strict records: site B takes over the lease; site A sees it
    # immediately, because /leases is CREW-consistent.
    site_b_leases.rebind("/build-farm", {"holder": "site-B"})
    print("site A sees lease holder:", leases.lookup("/build-farm"))

    # Meanwhile the eventual registry tolerates brief staleness:
    registry.rebind("/users/bob", {"uid": 1001, "site": "A (moved)"})
    print("site B right after the move:",
          site_b_registry.lookup("/users/bob"))
    cluster.run(4.0)
    print("site B after convergence:  ",
          site_b_registry.lookup("/users/bob"))

    bindings, contexts = site_b_registry.list("/users")
    print("\n/users contains:", bindings, "sub-contexts:", contexts)


if __name__ == "__main__":
    main()
