#!/usr/bin/env python
"""Distributed objects over Khazana (paper Section 4.2).

A tiny banking service: `Account` objects live in global memory; any
node can invoke methods on them through proxies.  The invocation
policy decides per call whether to pull a replica and run locally or
RPC to the node where the object already lives — using location
information exported from Khazana.

Run:  python examples/objects.py
"""

from repro import api
from repro.objects import (
    InvocationPolicy,
    KhazanaObject,
    ObjectRuntime,
    readonly,
    register_class,
)


@register_class
class Account(KhazanaObject):
    """State lives in Khazana; only behaviour is defined here."""

    @staticmethod
    def initial_state():
        return {"owner": "", "balance": 0}

    def open(self, state, owner, opening_balance=0):
        state["owner"] = owner
        state["balance"] = opening_balance
        return state["owner"]

    def deposit(self, state, amount):
        state["balance"] += amount
        return state["balance"]

    def transfer_out(self, state, amount):
        if amount > state["balance"]:
            raise ValueError(f"{state['owner']} has only {state['balance']}")
        state["balance"] -= amount
        return amount

    @readonly
    def balance(self, state):
        return state["balance"]


def main() -> None:
    cluster = api.create_cluster(num_nodes=4)
    branch_a = ObjectRuntime(cluster.client(node=1))
    branch_b = ObjectRuntime(cluster.client(node=2))
    auditor = ObjectRuntime(cluster.client(node=3))

    # Branch A creates two accounts in global memory.
    alice_ref = branch_a.export(Account)
    bob_ref = branch_a.export(Account)
    alice = branch_a.proxy(alice_ref)
    alice.open("alice", 100)
    branch_a.proxy(bob_ref).open("bob", 20)

    # Branch B operates on the same objects with no knowledge of where
    # they live — a transfer touches both.
    alice_at_b = branch_b.proxy(alice_ref)
    bob_at_b = branch_b.proxy(bob_ref)
    moved = alice_at_b.transfer_out(30)
    bob_at_b.deposit(moved)
    print(f"transferred {moved} from alice to bob at branch B")

    # The auditor reads via REMOTE policy (method ships to the data)
    # and via LOCAL policy (data ships to the method); same answers.
    remote_alice = auditor.proxy(alice_ref, policy=InvocationPolicy.REMOTE)
    local_bob = auditor.proxy(bob_ref, policy=InvocationPolicy.LOCAL)
    print("alice balance (remote invocation):", remote_alice.balance())
    print("bob balance (local replica):     ", local_bob.balance())

    total = remote_alice.balance() + local_bob.balance()
    assert total == 120, total
    print("audit total:", total)

    print("\nper-runtime invocation stats:")
    for name, rt in [("branch A", branch_a), ("branch B", branch_b),
                     ("auditor ", auditor)]:
        print(f"  {name}: {rt.stats}")

    # Reference counting: releasing the last reference reclaims the
    # object's region.
    branch_a.release(bob_ref)
    print("\nbob's account released; region reclaimed in background")
    cluster.run(2.0)


if __name__ == "__main__":
    main()
