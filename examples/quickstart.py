#!/usr/bin/env python
"""Quickstart: the Khazana global-memory API in five minutes.

Builds a 5-node cluster (the shape of Figure 1 in the paper), reserves
a region of the 128-bit global address space, and shows that data
written on one node is readable on every other node — with replication,
location, and consistency handled entirely by Khazana.

Run:  python examples/quickstart.py
"""

from repro import api
from repro.core import ConsistencyLevel, LockMode, RegionAttributes
from repro.core.addressing import format_address


def main() -> None:
    # Five peer daemons on a simulated LAN.  Node 0 doubles as the
    # cluster manager and the home of the address map.
    cluster = api.create_cluster(num_nodes=5)

    # --- Reserve + allocate a region -----------------------------------
    writer = cluster.client(node=1, principal="alice")
    region = writer.reserve(
        64 * 1024,
        RegionAttributes(
            consistency_level=ConsistencyLevel.STRICT,   # CREW protocol
            min_replicas=2,                              # survive 1 failure
        ),
    )
    print(f"reserved 64 KiB at {format_address(region.rid)}")
    print(f"home nodes: {list(region.home_nodes)}")
    writer.allocate(region.rid)

    # --- Write on node 1 -------------------------------------------------
    writer.write_at(region.rid, b"state shared through global memory")

    # --- Read from every other node ----------------------------------------
    for node in (0, 2, 3, 4):
        reader = cluster.client(node=node, principal="bob")
        data = reader.read_at(region.rid, 35)
        print(f"node {node} reads: {data.decode()}")

    # --- Explicit lock contexts (the paper's raw API) -----------------------
    ctx = writer.lock(region.rid + 4096, 4096, LockMode.WRITE)
    writer.write(ctx, region.rid + 4096, b"second page")
    print("locked page says:", writer.read(ctx, region.rid + 4096, 11))
    writer.unlock(ctx)

    # --- Mapped view (memory-mapped style access) ----------------------------
    with cluster.client(node=3).map(region.rid, 4096, LockMode.READ) as view:
        print("mapped view reads:", view.read(0, 5))

    # --- What it cost ----------------------------------------------------------
    stats = cluster.stats
    print(f"\nsimulated network: {stats.messages_sent} messages, "
          f"{stats.bytes_sent} bytes, virtual time {cluster.now:.3f}s")
    print("message mix:",
          {k: v for k, v in sorted(stats.by_type.items()) if v > 2})


if __name__ == "__main__":
    main()
