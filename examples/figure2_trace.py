#!/usr/bin/env python
"""Reproduce Figure 2 of the paper as a live sequence diagram.

Figure 2 shows "the steps involved in servicing a simple
<lock, fetch> request pair for a page p at Node A, when Node B owns
the page".  This script stages exactly that situation, captures the
wire traffic, and renders the exchange — so you can hold the output
next to the figure.

Run:  python examples/figure2_trace.py
"""

from repro import api
from repro.core import LockMode
from repro.tools.trace import MessageTrace


def main() -> None:
    cluster = api.create_cluster(num_nodes=5)
    trace = MessageTrace(cluster)

    # Node B (node 1) creates page p and becomes its owner.
    node_b = cluster.client(node=1)
    region = node_b.reserve(4096)
    node_b.allocate(region.rid)
    node_b.write_at(region.rid, b"page p, owned by node B")
    cluster.run(1.0)   # location hints settle at the cluster manager

    # Node A (node 3) services a cold <lock, fetch> pair.
    node_a = cluster.client(node=3)
    with trace:
        ctx = node_a.lock(region.rid, 4096, LockMode.READ)      # steps 1-11
        data = node_a.read(ctx, region.rid, 23)                 # steps 12-13
        node_a.unlock(ctx)

    print("cold <lock, fetch> at node A (3); owner is node B (1);")
    print("node 0 is the cluster manager:\n")
    print(trace.render_sequence())
    print("\nnode A read:", data)

    print("\npaper steps -> messages observed:")
    print("  1-3  obtain region descriptor  -> cm_hint_query/_reply")
    print("  4    page directory lookup     -> (local, no message)")
    print("  5-6  CM asks peer CM           -> lock_request")
    print("  7-10 copy of p + ownership     -> lock_reply (data inside)")
    print("  11-13 grant + local supply     -> (local, no message)")

    # Warm re-acquire: everything is local now.
    trace.clear().start()
    ctx = node_a.lock(region.rid, 4096, LockMode.READ)
    node_a.read(ctx, region.rid, 6)
    node_a.unlock(ctx)
    trace.stop()
    print(f"\nwarm re-acquire messages: {trace.count()} "
          "(steps 1-4 hit local caches; 5-13 need no peer)")


if __name__ == "__main__":
    main()
