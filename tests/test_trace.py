"""Tests for the message-trace tool."""

import pytest

from repro.api import create_cluster
from repro.net.message import MessageType
from repro.tools.trace import MessageTrace


@pytest.fixture
def traced():
    cluster = create_cluster(num_nodes=3)
    return cluster, MessageTrace(cluster)


def do_remote_read(cluster):
    kz = cluster.client(node=1)
    desc = kz.reserve(4096)
    kz.allocate(desc.rid)
    kz.write_at(desc.rid, b"traced")
    cluster.client(node=2).read_at(desc.rid, 6)
    return desc


class TestCollection:
    def test_inactive_trace_records_nothing(self, traced):
        cluster, trace = traced
        do_remote_read(cluster)
        assert trace.count() == 0

    def test_context_manager_scopes_collection(self, traced):
        cluster, trace = traced
        with trace:
            do_remote_read(cluster)
        before = trace.count()
        assert before > 0
        do_remote_read(cluster)   # outside the with-block
        assert trace.count() == before

    def test_background_filtered_by_default(self, traced):
        cluster, trace = traced
        with trace:
            cluster.run(5.0)   # plenty of detector pings
        assert trace.count(MessageType.PING) == 0

    def test_background_opt_in(self):
        cluster = create_cluster(num_nodes=2)
        trace = MessageTrace(cluster, background=True)
        with trace:
            cluster.run(5.0)
        assert trace.count(MessageType.PING) > 0

    def test_count_by_type_and_between(self, traced):
        cluster, trace = traced
        with trace:
            do_remote_read(cluster)
        assert trace.count(MessageType.LOCK_REQUEST) >= 1
        assert trace.between(2, 1) or trace.between(2, 0)

    def test_clear(self, traced):
        cluster, trace = traced
        with trace:
            do_remote_read(cluster)
        trace.clear()
        assert trace.count() == 0

    def test_by_engine_op_groups_wire_traffic(self, traced):
        cluster, trace = traced
        with trace:
            do_remote_read(cluster)
        groups = trace.by_engine_op()
        # The remote read is a grant transaction (LOCK_REQUEST /
        # LOCK_REPLY); location traffic falls outside the engine.
        assert groups.get("grant", 0) >= 2
        assert groups.get("other", 0) >= 1
        assert sum(groups.values()) == trace.count()


class TestRendering:
    def test_sequence_diagram_structure(self, traced):
        cluster, trace = traced
        with trace:
            do_remote_read(cluster)
        art = trace.render_sequence()
        assert "node 1" in art and "node 2" in art
        assert "lock_request" in art
        assert "--->" in art or "<---" in art

    def test_empty_diagram(self, traced):
        _cluster, trace = traced
        assert trace.render_sequence() == "(no messages)"

    def test_summary_counts(self, traced):
        cluster, trace = traced
        with trace:
            do_remote_read(cluster)
        summary = trace.summary()
        assert "lock_request" in summary
