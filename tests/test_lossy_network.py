"""End-to-end robustness under message loss.

Section 1 assumes "slow or intermittent WAN links"; the RPC layer
retransmits and the daemons suppress duplicate requests (a
retransmitted LOCK_REQUEST must not start a second directory
transaction).  These tests run real workloads over links that drop a
significant fraction of messages and require full correctness.
"""

import pytest

from repro.api import Cluster
from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.daemon import DaemonConfig
from repro.net.sim import Topology
from repro.fs import KhazanaFileSystem


def lossy_cluster(loss=0.15, seed=7, num_nodes=3):
    # Generous node count kept small: every message class still
    # crosses the wire, and the run stays fast despite retries.
    return Cluster(
        num_nodes=num_nodes,
        topology=Topology.lan(loss=loss),
        seed=seed,
        config=DaemonConfig(enable_failure_handling=False),
    )


class TestCoreUnderLoss:
    def test_reserve_allocate_write_read(self):
        cluster = lossy_cluster()
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        kz.write_at(desc.rid, b"survives loss")
        assert cluster.client(node=2).read_at(desc.rid, 13) == (
            b"survives loss"
        )

    def test_interleaved_writers_stay_coherent(self):
        cluster = lossy_cluster(loss=0.2, seed=3)
        kz1 = cluster.client(node=1)
        kz2 = cluster.client(node=2)
        desc = kz1.reserve(4096)
        kz1.allocate(desc.rid)
        for i in range(10):
            writer = kz1 if i % 2 == 0 else kz2
            writer.write_at(desc.rid, f"gen-{i:02d}".encode())
            reader = kz2 if i % 2 == 0 else kz1
            assert reader.read_at(desc.rid, 6) == f"gen-{i:02d}".encode()

    def test_duplicate_requests_do_not_double_reserve(self):
        """Retransmitted SPACE_REQUESTs must not double-delegate."""
        cluster = lossy_cluster(loss=0.3, seed=11)
        descs = []
        for node in (1, 2):
            kz = cluster.client(node=node)
            for _ in range(3):
                descs.append(kz.reserve(4096))
        for i, a in enumerate(descs):
            for b in descs[i + 1:]:
                assert not a.range.overlaps(b.range)

    def test_multiple_protocols_under_loss(self):
        cluster = lossy_cluster(loss=0.15, seed=5)
        for level in ConsistencyLevel:
            kz = cluster.client(node=1)
            desc = kz.reserve(
                4096, RegionAttributes(consistency_level=level)
            )
            kz.allocate(desc.rid)
            kz.write_at(desc.rid, level.value.encode())
            got = cluster.client(node=2).read_at(
                desc.rid, len(level.value)
            )
            if level is ConsistencyLevel.STRICT:
                assert got == level.value.encode()
            else:
                # Relaxed protocols may serve a pre-propagation zero
                # page; give the update a moment and re-read.
                cluster.run(5.0)
                got = cluster.client(node=2).read_at(
                    desc.rid, len(level.value)
                )
                assert got == level.value.encode()


class TestFilesystemUnderLoss:
    def test_fs_workload_with_lossy_links(self):
        cluster = lossy_cluster(loss=0.1, seed=21)
        fs = KhazanaFileSystem.format(cluster.client(node=1))
        fs.mkdir("/d")
        with fs.create("/d/file.txt") as f:
            f.write(b"lossy but correct" * 10)
        other = KhazanaFileSystem.mount(
            cluster.client(node=2), fs.superblock_addr
        )
        with other.open("/d/file.txt") as f:
            assert f.read() == b"lossy but correct" * 10
        other.rename("/d/file.txt", "/d/renamed.txt")
        assert fs.listdir("/d") == ["renamed.txt"]
