"""Tests for the dynamic race/invariant detector (repro.analysis.races)."""

from __future__ import annotations

from repro.analysis.races import RaceDetector, Violation
from repro.api import create_cluster
from repro.core.addressing import AddressRange
from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.daemon import DaemonConfig
from repro.core.locks import LockContext, LockMode


def _racing_cluster(num_nodes: int = 3):
    return create_cluster(
        num_nodes=num_nodes, config=DaemonConfig(detect_races=True)
    )


class TestWiring:
    def test_detector_shared_by_cluster(self):
        cluster = _racing_cluster()
        assert cluster.race_detector is not None
        assert cluster.race_detector.enabled
        for node in cluster.node_ids():
            assert cluster.daemon(node).probe is cluster.race_detector
            assert cluster.daemon(node).lock_table.probe is (
                cluster.race_detector
            )

    def test_detection_off_by_default(self):
        cluster = create_cluster(num_nodes=2)
        assert cluster.race_detector is None
        assert not cluster.daemon(0).probe.enabled


class TestCleanRuns:
    def test_crew_workload_is_clean(self):
        cluster = _racing_cluster()
        kz1, kz2 = cluster.client(1), cluster.client(2)
        desc = kz1.reserve(4 * 4096)
        kz1.allocate(desc.rid)
        kz1.write_at(desc.rid, b"hello")
        assert kz2.read_at(desc.rid, 5) == b"hello"
        kz2.write_at(desc.rid, b"world")
        assert kz1.read_at(desc.rid, 5) == b"world"
        assert cluster.race_detector.violations == []
        assert "no violations" in cluster.race_detector.report()

    def test_release_tokens_conserved(self):
        cluster = _racing_cluster()
        kz1, kz2 = cluster.client(1), cluster.client(2)
        attrs = RegionAttributes(consistency_level=ConsistencyLevel.RELEASE)
        desc = kz1.reserve(4 * 4096, attrs)
        kz1.allocate(desc.rid)
        for round_no in range(3):
            kz1.write_at(desc.rid, bytes([round_no]) * 64)
            kz2.write_at(desc.rid, bytes([round_no + 100]) * 64)
        cluster.run(1.0)
        detector = cluster.race_detector
        assert detector.violations == []
        # Quiesced: every granted token was returned.
        assert not any(
            v.rule == "token-conservation" for v in detector.final_check()
        )

    def test_eventual_concurrent_writes_are_observed_not_flagged(self):
        cluster = _racing_cluster()
        kz1, kz2 = cluster.client(1), cluster.client(2)
        attrs = RegionAttributes(consistency_level=ConsistencyLevel.EVENTUAL)
        desc = kz1.reserve(4096, attrs)
        kz1.allocate(desc.rid)
        kz1.write_at(desc.rid, b"a" * 16)
        kz2.write_at(desc.rid, b"b" * 16)
        cluster.run(1.0)
        assert not any(
            v.rule == "concurrent-writes"
            for v in cluster.race_detector.violations
        )


class TestSeededRaces:
    def test_crew_double_writer_is_caught(self):
        cluster = _racing_cluster()
        kz1 = cluster.client(1)
        desc = kz1.reserve(4096)
        kz1.allocate(desc.rid)
        ctx1 = kz1.lock(desc.rid, 4096, LockMode.WRITE)
        # Bypass the consistency protocol: hand node 2's lock table a
        # second WRITE context on the same page, exactly what a buggy
        # CM that forgot to invalidate would do.
        rogue = LockContext(
            rid=desc.rid, range=AddressRange(desc.rid, 4096),
            mode=LockMode.WRITE, node_id=2, principal="rogue",
        )
        cluster.daemon(2).lock_table.register(rogue, [desc.rid])

        detector = cluster.race_detector
        flagged = [v for v in detector.violations
                   if v.rule == "crew-double-writer"]
        assert flagged, detector.report()
        violation = flagged[0]
        assert desc.rid in violation.pages
        assert set(violation.nodes) == {1, 2}
        report = detector.report()
        assert "crew-double-writer" in report
        assert "violation(s)" in report

        cluster.daemon(2).lock_table.release(rogue, [desc.rid])
        kz1.unlock(ctx1)

    def test_token_double_grant_is_caught(self):
        detector = RaceDetector()
        detector.token_granted(0, 0x1000, 1)
        detector.token_granted(0, 0x1000, 2)
        assert any(v.rule == "token-conservation"
                   for v in detector.violations)

    def test_token_release_by_non_holder_is_caught(self):
        detector = RaceDetector()
        detector.token_granted(0, 0x1000, 1)
        detector.token_released(0, 0x1000, 2)
        flagged = [v for v in detector.violations
                   if v.rule == "token-conservation"]
        assert flagged and "held by node 1" in flagged[0].detail

    def test_token_release_never_granted_is_caught(self):
        detector = RaceDetector()
        detector.token_released(0, 0x2000, 3)
        assert any("never granted" in v.detail for v in detector.violations)

    def test_outstanding_token_surfaces_in_final_check(self):
        detector = RaceDetector()
        detector.token_granted(0, 0x3000, 4)
        violations = detector.final_check()
        assert any(v.rule == "token-conservation"
                   and "still held" in v.detail for v in violations)

    def test_stale_context_access_is_caught(self):
        detector = RaceDetector()
        ctx = LockContext(
            rid=0x5000, range=AddressRange(0x5000, 4096),
            mode=LockMode.READ, node_id=0, principal="t",
        )
        detector.lock_registered(ctx, [0x5000])
        detector.lock_released(ctx, [0x5000])
        ctx.closed = True
        detector.page_read(0, ctx, [0x5000], "crew")
        assert any(v.rule == "stale-context" for v in detector.violations)

    def test_unbalanced_release_is_caught(self):
        detector = RaceDetector()
        ctx = LockContext(
            rid=0x6000, range=AddressRange(0x6000, 4096),
            mode=LockMode.READ, node_id=1, principal="t",
        )
        detector.lock_released(ctx, [0x6000])
        assert any(v.rule == "pin-balance" for v in detector.violations)


class TestViolationReports:
    def test_render_includes_pages_nodes_history(self):
        violation = Violation(
            rule="crew-double-writer", detail="two writers",
            pages=(0x4000,), nodes=(1, 2),
            history=("lock_request 1->0 (msg 7)",),
        )
        text = violation.render()
        assert "crew-double-writer" in text
        assert "0x4000" in text
        assert "nodes: 1, 2" in text
        assert "lock_request 1->0" in text

    def test_assert_clean_raises_with_report(self):
        import pytest

        detector = RaceDetector()
        detector.token_released(0, 0x2000, 3)
        with pytest.raises(AssertionError, match="token-conservation"):
            detector.assert_clean()
