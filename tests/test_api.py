"""Tests for the public facade: cluster construction and fault surface."""

import pytest

from repro.api import Cluster, create_cluster, create_hierarchy
from repro.core.daemon import DaemonConfig
from repro.net.sim import LAN_LATENCY, WAN_LATENCY, Topology


class TestConstruction:
    def test_minimum_one_node(self):
        with pytest.raises(ValueError):
            create_cluster(num_nodes=0)

    def test_default_topology_is_lan(self):
        cluster = create_cluster(num_nodes=3)
        assert cluster.topology.link(0, 2).base_latency == LAN_LATENCY

    def test_named_topologies(self):
        wan = create_cluster(num_nodes=2, topology="wan")
        assert wan.topology.link(0, 1).base_latency == WAN_LATENCY
        two = create_cluster(num_nodes=4, topology="two_cluster")
        assert two.topology.link(0, 1).base_latency == LAN_LATENCY
        assert two.topology.link(0, 3).base_latency == WAN_LATENCY

    def test_explicit_topology_instance(self):
        topo = Topology.lan(jitter=0.001)
        cluster = Cluster(num_nodes=2, topology=topo)
        assert cluster.topology is topo

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            create_cluster(num_nodes=2, topology="mesh")

    def test_storage_sizing_helpers(self):
        cluster = create_cluster(num_nodes=1, memory_pages=8, disk_pages=32)
        daemon = cluster.daemon(0)
        assert daemon.storage.memory.capacity_bytes == 8 * 4096
        assert daemon.storage.disk.capacity_bytes == 32 * 4096

    def test_hierarchy_helper_layout(self):
        cluster = create_hierarchy([2, 3])
        assert cluster.node_ids() == [0, 1, 2, 3, 4]
        assert cluster.clusters == [[0, 1], [2, 3, 4]]

    def test_node_zero_is_manager_and_bootstrap(self):
        cluster = create_cluster(num_nodes=3)
        assert cluster.daemon(0).cluster_role is not None
        assert 0 in cluster.daemon(0).homed_regions or True
        assert cluster.daemon(1).config.bootstrap_node == 0


class TestSimulationControl:
    def test_run_advances_virtual_time(self):
        cluster = create_cluster(num_nodes=1)
        before = cluster.now
        cluster.run(2.5)
        assert cluster.now == pytest.approx(before + 2.5)

    def test_clients_share_one_timeline(self):
        cluster = create_cluster(num_nodes=2)
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        assert cluster.now >= 0.01   # settle ran

    def test_crash_wipes_ram_not_disk(self):
        cluster = create_cluster(num_nodes=2)
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        kz.write_at(desc.rid, b"x")
        daemon = cluster.daemon(1)
        # Force the page onto disk as well.
        from repro.storage.store import StoredPage

        page = daemon.storage.peek(desc.rid)
        daemon.storage.disk.put(StoredPage(desc.rid, page.data))
        cluster.crash(1)
        assert daemon.storage.memory.used_bytes() == 0
        assert daemon.storage.disk.contains(desc.rid)

    def test_partition_and_heal_surface(self):
        cluster = create_cluster(num_nodes=4)
        cluster.partition([0, 1], [2, 3])
        kz = cluster.client(node=2)
        from repro.core.errors import KhazanaError

        with pytest.raises(KhazanaError):
            kz.reserve(4096)   # manager (node 0) unreachable
        cluster.heal()
        desc = kz.reserve(4096)
        assert desc is not None

    def test_stats_surface(self):
        cluster = create_cluster(num_nodes=2)
        cluster.client(node=1).reserve(4096)
        assert cluster.stats.messages_sent > 0
