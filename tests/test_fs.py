"""Tests for KFS, the Section 4.1 wide-area distributed file system."""

import pytest

from repro.api import create_cluster
from repro.core.attributes import ConsistencyLevel
from repro.fs import FileSystemError, FileType, KhazanaFileSystem
from repro.fs.layout import BLOCK_SIZE, MAX_BLOCKS


@pytest.fixture
def fs(cluster):
    return KhazanaFileSystem.format(cluster.client(node=1))


class TestFormatMount:
    def test_format_creates_root(self, fs):
        assert fs.listdir("/") == []
        root = fs._read_inode(fs.root_inode_addr)
        assert root.file_type is FileType.DIRECTORY

    def test_mount_by_superblock_address(self, cluster, fs):
        other = KhazanaFileSystem.mount(
            cluster.client(node=3), fs.superblock_addr
        )
        assert other.root_inode_addr == fs.root_inode_addr

    def test_mount_garbage_address_fails(self, cluster, fs):
        kz = cluster.client(node=2)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        with pytest.raises(FileSystemError):
            KhazanaFileSystem.mount(kz, desc.rid)


class TestFilesBasic:
    def test_create_write_read(self, fs):
        with fs.create("/a.txt") as f:
            f.write(b"hello")
        with fs.open("/a.txt") as f:
            assert f.read() == b"hello"

    def test_create_existing_fails(self, fs):
        fs.create("/a.txt").close()
        with pytest.raises(FileSystemError):
            fs.create("/a.txt")

    def test_open_missing_read_fails(self, fs):
        with pytest.raises(FileSystemError):
            fs.open("/missing.txt")

    def test_open_w_truncates(self, fs):
        with fs.create("/a.txt") as f:
            f.write(b"long content here")
        with fs.open("/a.txt", "w") as f:
            f.write(b"hi")
        assert fs.stat("/a.txt").size == 2

    def test_open_a_appends(self, fs):
        with fs.create("/a.txt") as f:
            f.write(b"one,")
        with fs.open("/a.txt", "a") as f:
            f.write(b"two")
        with fs.open("/a.txt") as f:
            assert f.read() == b"one,two"

    def test_seek_tell(self, fs):
        with fs.create("/a.txt") as f:
            f.write(b"0123456789")
            f.seek(2)
            assert f.tell() == 2
            assert f.read(3) == b"234"
            f.seek(-2, 2)
            assert f.read() == b"89"

    def test_pread_pwrite(self, fs):
        with fs.create("/a.txt") as f:
            f.write(b"aaaaaaaa")
            f.pwrite(2, b"XX")
            assert f.pread(0, 8) == b"aaXXaaaa"
            assert f.tell() == 8   # position unchanged by p-ops

    def test_multi_block_file(self, fs):
        blob = bytes(i % 251 for i in range(3 * BLOCK_SIZE + 17))
        with fs.create("/big.bin") as f:
            f.write(blob)
        st = fs.stat("/big.bin")
        assert st.size == len(blob)
        assert len(st.blocks) == 4
        with fs.open("/big.bin") as f:
            assert f.read() == blob

    def test_each_block_is_its_own_region(self, fs):
        with fs.create("/two.bin") as f:
            f.write(b"z" * (2 * BLOCK_SIZE))
        st = fs.stat("/two.bin")
        assert len(set(st.blocks)) == 2
        for block in st.blocks:
            assert block % BLOCK_SIZE == 0

    def test_sparse_hole_reads_zero(self, fs):
        with fs.create("/sparse.bin") as f:
            f.truncate(2 * BLOCK_SIZE)
            assert f.pread(10, 20) == b"\x00" * 20

    def test_truncate_frees_blocks(self, cluster, fs):
        with fs.create("/t.bin") as f:
            f.write(b"x" * (3 * BLOCK_SIZE))
            f.truncate(BLOCK_SIZE)
        st = fs.stat("/t.bin")
        assert st.size == BLOCK_SIZE
        assert len(st.blocks) == 1

    def test_file_size_limit_enforced(self, fs):
        with fs.create("/cap.bin") as f:
            with pytest.raises(Exception):
                f.pwrite(MAX_BLOCKS * BLOCK_SIZE, b"overflow")

    def test_closed_handle_rejects_io(self, fs):
        f = fs.create("/c.txt")
        f.close()
        with pytest.raises(ValueError):
            f.read()

    def test_read_only_handle_rejects_write(self, fs):
        fs.create("/r.txt").close()
        with fs.open("/r.txt", "r") as f:
            with pytest.raises(PermissionError):
                f.write(b"nope")


class TestDirectories:
    def test_mkdir_listdir(self, fs):
        fs.mkdir("/d")
        fs.mkdir("/d/e")
        fs.create("/d/f.txt").close()
        assert fs.listdir("/") == ["d"]
        assert fs.listdir("/d") == ["e", "f.txt"]

    def test_mkdir_existing_fails(self, fs):
        fs.mkdir("/d")
        with pytest.raises(FileSystemError):
            fs.mkdir("/d")

    def test_nested_path_resolution(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/a/b")
        with fs.create("/a/b/c.txt") as f:
            f.write(b"deep")
        with fs.open("/a/b/c.txt") as f:
            assert f.read() == b"deep"

    def test_missing_parent_fails(self, fs):
        with pytest.raises(FileSystemError):
            fs.create("/no/such/parent.txt")

    def test_rmdir_empty_only(self, fs):
        fs.mkdir("/d")
        fs.create("/d/x").close()
        with pytest.raises(FileSystemError):
            fs.rmdir("/d")
        fs.unlink("/d/x")
        fs.rmdir("/d")
        assert not fs.exists("/d")

    def test_unlink_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(FileSystemError):
            fs.unlink("/d")

    def test_rename_within_directory(self, fs):
        fs.create("/old.txt").close()
        fs.rename("/old.txt", "/new.txt")
        assert fs.exists("/new.txt")
        assert not fs.exists("/old.txt")

    def test_rename_across_directories(self, fs):
        fs.mkdir("/src")
        fs.mkdir("/dst")
        with fs.create("/src/f.txt") as f:
            f.write(b"moved")
        fs.rename("/src/f.txt", "/dst/g.txt")
        assert fs.listdir("/src") == []
        with fs.open("/dst/g.txt") as f:
            assert f.read() == b"moved"

    def test_tree_listing(self, fs):
        fs.mkdir("/d")
        with fs.create("/d/f") as f:
            f.write(b"abc")
        tree = fs.tree("/")
        assert tree["children"]["d"]["children"]["f"]["size"] == 3

    def test_relative_path_rejected(self, fs):
        with pytest.raises(FileSystemError):
            fs.create("relative.txt")

    def test_bad_names_rejected(self, fs):
        from repro.fs.layout import LayoutError

        with pytest.raises((FileSystemError, LayoutError)):
            fs.create("/..")


class TestUnlink:
    def test_unlink_releases_regions(self, cluster, fs):
        with fs.create("/gone.bin") as f:
            f.write(b"y" * BLOCK_SIZE)
        st = fs.stat("/gone.bin")
        block = st.blocks[0]
        fs.unlink("/gone.bin")
        cluster.run(5.0)   # background unreserve drains
        from repro.core.errors import KhazanaError

        kz = cluster.client(node=1)
        with pytest.raises(KhazanaError):
            kz.read_at(block, 4)

    def test_unlink_missing_fails(self, fs):
        with pytest.raises(FileSystemError):
            fs.unlink("/phantom")


class TestDistribution:
    """The paper's headline: the FS code is identical on 1..N nodes
    and instances share state only through Khazana."""

    def test_multi_mount_sharing(self, cluster, fs):
        fs3 = KhazanaFileSystem.mount(
            cluster.client(node=3), fs.superblock_addr
        )
        with fs.create("/shared.txt") as f:
            f.write(b"from node 1")
        with fs3.open("/shared.txt") as f:
            assert f.read() == b"from node 1"
        with fs3.open("/shared.txt", "a") as f:
            f.write(b" + node 3")
        with fs.open("/shared.txt") as f:
            assert f.read() == b"from node 1 + node 3"

    def test_same_code_single_node_cluster(self):
        single = create_cluster(num_nodes=1)
        fs = KhazanaFileSystem.format(single.client(node=0))
        fs.mkdir("/solo")
        with fs.create("/solo/f.txt") as f:
            f.write(b"standalone")
        with fs.open("/solo/f.txt") as f:
            assert f.read() == b"standalone"

    def test_replicated_filesystem_survives_home_crash(self):
        cluster = create_cluster(num_nodes=6)
        fs = KhazanaFileSystem.format(
            cluster.client(node=1),
            consistency=ConsistencyLevel.STRICT,
            replicas=2,
        )
        with fs.create("/important.txt") as f:
            f.write(b"do not lose")
        cluster.run(2.0)
        cluster.crash(1)
        cluster.run(15.0)
        fs4 = KhazanaFileSystem.mount(
            cluster.client(node=4), fs.superblock_addr
        )
        with fs4.open("/important.txt") as f:
            assert f.read() == b"do not lose"

    def test_concurrent_directory_updates_from_two_nodes(self, cluster, fs):
        fs3 = KhazanaFileSystem.mount(
            cluster.client(node=3), fs.superblock_addr
        )
        for i in range(5):
            fs.create(f"/n1-{i}").close()
            fs3.create(f"/n3-{i}").close()
        names = fs.listdir("/")
        assert len(names) == 10
        assert fs3.listdir("/") == names
