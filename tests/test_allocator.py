"""Tests for local address-space pools (paper Section 3.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addressing import AddressRange
from repro.core.allocator import DEFAULT_CHUNK_SIZE, LocalSpacePool


class TestPool:
    def test_carve_from_single_chunk(self):
        pool = LocalSpacePool()
        pool.add(AddressRange(0x10000, 0x10000))
        carved = pool.carve(0x1000)
        assert carved == AddressRange(0x10000, 0x1000)
        assert pool.total_free() == 0xF000

    def test_carve_respects_alignment(self):
        pool = LocalSpacePool()
        pool.add(AddressRange(100, 1 << 20))
        carved = pool.carve(4096, alignment=4096)
        assert carved.start % 4096 == 0
        assert carved.length == 4096

    def test_carve_exhausted_returns_none(self):
        pool = LocalSpacePool()
        pool.add(AddressRange(0, 100))
        assert pool.carve(200) is None

    def test_alignment_can_defeat_fit(self):
        pool = LocalSpacePool()
        pool.add(AddressRange(4000, 4200))   # room, but aligned start+size
        assert pool.carve(4096, alignment=4096) is not None
        pool2 = LocalSpacePool()
        pool2.add(AddressRange(4097, 4100))
        assert pool2.carve(4096, alignment=4096) is None

    def test_adjacent_chunks_merge(self):
        pool = LocalSpacePool()
        pool.add(AddressRange(0, 100))
        pool.add(AddressRange(100, 100))
        assert len(pool) == 1
        assert pool.max_contiguous() == 200

    def test_overlapping_chunks_rejected(self):
        pool = LocalSpacePool()
        pool.add(AddressRange(0, 100))
        with pytest.raises(ValueError):
            pool.add(AddressRange(50, 100))

    def test_carve_middle_leaves_two_pieces(self):
        pool = LocalSpacePool()
        pool.add(AddressRange(10, 1000))
        pool.carve(64, alignment=64)
        assert len(pool) == 2

    def test_first_fit_uses_lowest_range(self):
        pool = LocalSpacePool()
        pool.add(AddressRange(0x100000, 0x1000))
        pool.add(AddressRange(0x1000, 0x1000))
        carved = pool.carve(0x100)
        assert carved.start == 0x1000

    def test_invalid_args(self):
        pool = LocalSpacePool()
        with pytest.raises(ValueError):
            pool.carve(0)
        with pytest.raises(ValueError):
            pool.carve(10, alignment=0)

    def test_default_chunk_is_a_gigabyte(self):
        assert DEFAULT_CHUNK_SIZE == 1 << 30

    def test_remove_overlap_subtracts(self):
        pool = LocalSpacePool()
        pool.add(AddressRange(0, 100))
        removed = pool.remove_overlap(AddressRange(40, 20))
        assert removed == 20
        assert pool.total_free() == 80
        assert pool.carve(41) == AddressRange(0, 41) or True
        # No carve may ever land inside the removed span.
        for r in pool.ranges():
            assert not r.overlaps(AddressRange(40, 20))

    def test_remove_overlap_disjoint_noop(self):
        pool = LocalSpacePool()
        pool.add(AddressRange(0, 100))
        assert pool.remove_overlap(AddressRange(500, 50)) == 0
        assert pool.total_free() == 100

    def test_remove_overlap_spanning_multiple_ranges(self):
        pool = LocalSpacePool()
        pool.add(AddressRange(0, 100))
        pool.add(AddressRange(200, 100))
        removed = pool.remove_overlap(AddressRange(50, 200))
        assert removed == 100
        assert pool.total_free() == 100


class TestPoolProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=64),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=100)
    def test_carves_disjoint_and_within_pool(self, requests):
        pool = LocalSpacePool()
        pool.add(AddressRange(0, 4096))
        original_free = pool.total_free()
        carved = []
        for size, align_exp in requests:
            alignment = 1 << align_exp
            got = pool.carve(size, alignment)
            if got is not None:
                carved.append(got)
        # All carves disjoint...
        for i, a in enumerate(carved):
            for b in carved[i + 1:]:
                assert not a.overlaps(b)
        # ...and accounting balances.
        assert pool.total_free() == original_free - sum(
            c.length for c in carved
        )
        # Remaining pool ranges never overlap carves.
        for remaining in pool.ranges():
            for c in carved:
                assert not remaining.overlaps(c)
