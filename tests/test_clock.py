"""Tests for the virtual clock and event scheduler."""

import pytest

from repro.net.clock import EventScheduler, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_never_backwards(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)


class TestScheduler:
    def test_events_fire_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.call_at(3.0, lambda: fired.append("c"))
        sched.call_at(1.0, lambda: fired.append("a"))
        sched.call_at(2.0, lambda: fired.append("b"))
        sched.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sched = EventScheduler()
        fired = []
        for tag in "abcd":
            sched.call_at(1.0, lambda t=tag: fired.append(t))
        sched.run_until_idle()
        assert fired == list("abcd")

    def test_clock_tracks_events(self):
        sched = EventScheduler()
        seen = []
        sched.call_at(2.5, lambda: seen.append(sched.now))
        sched.run_until_idle()
        assert seen == [2.5]
        assert sched.now == 2.5

    def test_call_later_relative(self):
        sched = EventScheduler()
        sched.call_at(5.0, lambda: sched.call_later(1.0, lambda: None))
        sched.run_until_idle()
        assert sched.now == 6.0

    def test_negative_delay_rejected(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            sched.call_later(-1.0, lambda: None)

    def test_past_schedule_rejected(self):
        sched = EventScheduler()
        sched.call_at(5.0, lambda: None)
        sched.run_until_idle()
        with pytest.raises(ValueError):
            sched.call_at(1.0, lambda: None)

    def test_cancel(self):
        sched = EventScheduler()
        fired = []
        handle = sched.call_at(1.0, lambda: fired.append("x"))
        handle.cancel()
        assert sched.run_until_idle() == 0
        assert fired == []

    def test_cancelled_not_counted_in_pending(self):
        sched = EventScheduler()
        keep = sched.call_at(1.0, lambda: None)
        drop = sched.call_at(2.0, lambda: None)
        drop.cancel()
        assert sched.pending == 1
        assert not keep.cancelled

    def test_run_until_stops_at_deadline(self):
        sched = EventScheduler()
        fired = []
        sched.call_at(1.0, lambda: fired.append(1))
        sched.call_at(5.0, lambda: fired.append(5))
        sched.run_until(2.0)
        assert fired == [1]
        assert sched.now == 2.0
        sched.run_until_idle()
        assert fired == [1, 5]

    def test_run_for_advances_clock_even_when_idle(self):
        sched = EventScheduler()
        sched.run_for(3.0)
        assert sched.now == 3.0

    def test_events_scheduled_during_run(self):
        sched = EventScheduler()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sched.call_later(1.0, lambda: chain(n + 1))

        sched.call_soon(lambda: chain(0))
        sched.run_until_idle()
        assert fired == [0, 1, 2, 3]

    def test_livelock_guard(self):
        sched = EventScheduler()

        def forever():
            sched.call_soon(forever)

        sched.call_soon(forever)
        with pytest.raises(RuntimeError):
            sched.run_until_idle(max_events=100)

    def test_events_processed_counter(self):
        sched = EventScheduler()
        for _ in range(5):
            sched.call_soon(lambda: None)
        sched.run_until_idle()
        assert sched.events_processed == 5
