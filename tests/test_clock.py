"""Tests for the virtual clock and event scheduler."""

import pytest

from repro.net.clock import EventScheduler, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_never_backwards(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)


class TestScheduler:
    def test_events_fire_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.call_at(3.0, lambda: fired.append("c"))
        sched.call_at(1.0, lambda: fired.append("a"))
        sched.call_at(2.0, lambda: fired.append("b"))
        sched.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sched = EventScheduler()
        fired = []
        for tag in "abcd":
            sched.call_at(1.0, lambda t=tag: fired.append(t))
        sched.run_until_idle()
        assert fired == list("abcd")

    def test_clock_tracks_events(self):
        sched = EventScheduler()
        seen = []
        sched.call_at(2.5, lambda: seen.append(sched.now))
        sched.run_until_idle()
        assert seen == [2.5]
        assert sched.now == 2.5

    def test_call_later_relative(self):
        sched = EventScheduler()
        sched.call_at(5.0, lambda: sched.call_later(1.0, lambda: None))
        sched.run_until_idle()
        assert sched.now == 6.0

    def test_negative_delay_rejected(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            sched.call_later(-1.0, lambda: None)

    def test_past_schedule_rejected(self):
        sched = EventScheduler()
        sched.call_at(5.0, lambda: None)
        sched.run_until_idle()
        with pytest.raises(ValueError):
            sched.call_at(1.0, lambda: None)

    def test_cancel(self):
        sched = EventScheduler()
        fired = []
        handle = sched.call_at(1.0, lambda: fired.append("x"))
        handle.cancel()
        assert sched.run_until_idle() == 0
        assert fired == []

    def test_cancelled_not_counted_in_pending(self):
        sched = EventScheduler()
        keep = sched.call_at(1.0, lambda: None)
        drop = sched.call_at(2.0, lambda: None)
        drop.cancel()
        assert sched.pending == 1
        assert not keep.cancelled

    def test_run_until_stops_at_deadline(self):
        sched = EventScheduler()
        fired = []
        sched.call_at(1.0, lambda: fired.append(1))
        sched.call_at(5.0, lambda: fired.append(5))
        sched.run_until(2.0)
        assert fired == [1]
        assert sched.now == 2.0
        sched.run_until_idle()
        assert fired == [1, 5]

    def test_run_for_advances_clock_even_when_idle(self):
        sched = EventScheduler()
        sched.run_for(3.0)
        assert sched.now == 3.0

    def test_events_scheduled_during_run(self):
        sched = EventScheduler()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sched.call_later(1.0, lambda: chain(n + 1))

        sched.call_soon(lambda: chain(0))
        sched.run_until_idle()
        assert fired == [0, 1, 2, 3]

    def test_livelock_guard(self):
        sched = EventScheduler()

        def forever():
            sched.call_soon(forever)

        sched.call_soon(forever)
        with pytest.raises(RuntimeError):
            sched.run_until_idle(max_events=100)

    def test_events_processed_counter(self):
        sched = EventScheduler()
        for _ in range(5):
            sched.call_soon(lambda: None)
        sched.run_until_idle()
        assert sched.events_processed == 5

    def test_cancel_after_fire_is_harmless(self):
        sched = EventScheduler()
        fired = []
        handle = sched.call_at(1.0, lambda: fired.append("x"))
        sched.run_until_idle()
        handle.cancel()   # late cancel must not unfire or raise
        assert fired == ["x"]
        assert handle.cancelled

    def test_same_timestamp_ties_break_by_schedule_order(self):
        sched = EventScheduler()
        fired = []
        # Interleave two logical streams at one timestamp: (when, seq)
        # ordering must preserve global submission order, not stream.
        sched.call_at(1.0, lambda: fired.append("a0"))
        sched.call_at(1.0, lambda: fired.append("b0"))
        sched.call_at(1.0, lambda: fired.append("a1"))
        sched.call_at(1.0, lambda: fired.append("b1"))
        sched.run_until_idle()
        assert fired == ["a0", "b0", "a1", "b1"]

    def test_run_until_exactly_at_event_time_fires_it(self):
        sched = EventScheduler()
        fired = []
        sched.call_at(2.0, lambda: fired.append(2))
        sched.call_at(2.0 + 1e-9, lambda: fired.append(3))
        sched.run_until(2.0)
        assert fired == [2]      # deadline is inclusive...
        assert sched.now == 2.0  # ...and the clock parks on it

    def test_max_events_exhaustion_reports_pending_work(self):
        sched = EventScheduler()
        for i in range(10):
            sched.call_at(float(i), lambda: None)
        with pytest.raises(RuntimeError):
            sched.run_until_idle(max_events=5)
        # The guard fired mid-schedule: the tail is still pending.
        assert sched.pending == 4

    def test_event_labels_exposed_on_handle(self):
        sched = EventScheduler()
        handle = sched.call_later(1.0, lambda: None, label="deliver:x")
        assert handle.label == "deliver:x"


class TestSchedulerChooser:
    """The schedule-exploration hooks (chooser/observer/horizon)."""

    def test_chooser_reorders_within_window(self):
        sched = EventScheduler()
        sched.choice_horizon = 1.0
        fired = []
        sched.call_at(1.0, lambda: fired.append("a"), label="a")
        sched.call_at(1.5, lambda: fired.append("b"), label="b")
        sched.chooser = lambda window: window[-1]
        sched.run_until_idle()
        assert fired == ["b", "a"]

    def test_clock_never_regresses_under_reordering(self):
        sched = EventScheduler()
        sched.choice_horizon = 1.0
        times = []
        sched.call_at(1.0, lambda: times.append(sched.now), label="a")
        sched.call_at(1.5, lambda: times.append(sched.now), label="b")
        sched.chooser = lambda window: window[-1]
        sched.run_until_idle()
        # The later event fires "early" at the window head's time; the
        # clock never reaches the chosen event's nominal 1.5.
        assert times == [1.0, 1.0]
        assert sched.now == 1.0

    def test_events_outside_horizon_not_offered(self):
        sched = EventScheduler()
        sched.choice_horizon = 0.1
        windows = []

        def chooser(window):
            windows.append([e.label for e in window])
            return window[0]

        sched.chooser = chooser
        sched.call_at(1.0, lambda: None, label="near")
        sched.call_at(5.0, lambda: None, label="far")
        sched.run_until_idle()
        assert windows == []   # singleton windows never reach the hook

    def test_cancelled_choice_consumes_step_without_running(self):
        sched = EventScheduler()
        sched.choice_horizon = 1.0
        fired = []
        sched.call_at(1.0, lambda: fired.append("a"), label="a")
        sched.call_at(1.5, lambda: fired.append("b"), label="b")

        def lose_first(window):
            window[0].cancelled = True   # modelled message loss
            return window[0]

        sched.chooser = lose_first
        sched.step()
        sched.chooser = None
        sched.run_until_idle()
        assert fired == ["b"]

    def test_observer_sees_every_executed_event(self):
        sched = EventScheduler()
        seen = []
        sched.observer = lambda event: seen.append(event.label)
        sched.call_at(1.0, lambda: None, label="x")
        sched.call_at(2.0, lambda: None, label="y")
        sched.run_until_idle()
        assert seen == ["x", "y"]
