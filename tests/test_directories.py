"""Tests for the per-node region directory and page directory."""

from repro.core.addressing import AddressRange
from repro.core.attributes import RegionAttributes
from repro.core.page_directory import PageDirectory
from repro.core.region import RegionDescriptor
from repro.core.region_directory import RegionDirectory


def desc(start, length=0x4000, homes=(1,), version=None):
    d = RegionDescriptor(
        range=AddressRange(start, length),
        attrs=RegionAttributes(),
        home_nodes=homes,
    )
    if version is not None:
        object.__setattr__(d, "version", version)
    return d


class TestRegionDirectory:
    def test_insert_and_get(self):
        rd = RegionDirectory()
        d = desc(0x10000)
        rd.insert(d)
        assert rd.get(0x10000) is d

    def test_find_covering(self):
        rd = RegionDirectory()
        rd.insert(desc(0x10000, 0x4000))
        hit = rd.find_covering(0x12000)
        assert hit is not None and hit.rid == 0x10000
        assert rd.find_covering(0x20000) is None

    def test_lru_eviction(self):
        rd = RegionDirectory(capacity=2)
        a, b, c = desc(0x10000), desc(0x20000), desc(0x30000)
        rd.insert(a)
        rd.insert(b)
        rd.get(0x10000)     # refresh a
        rd.insert(c)        # evicts b
        assert rd.get(0x20000) is None
        assert rd.get(0x10000) is not None
        assert rd.get(0x30000) is not None

    def test_pinned_entries_never_evicted(self):
        rd = RegionDirectory(capacity=1)
        system = desc(0)
        rd.pin(system)
        rd.insert(desc(0x10000))
        rd.insert(desc(0x20000))
        assert rd.get(0) is system
        assert rd.find_covering(0x100).rid == 0

    def test_newer_version_wins(self):
        rd = RegionDirectory()
        old = desc(0x10000, version=5)
        new = desc(0x10000, version=9)
        rd.insert(new)
        rd.insert(old)   # stale insert must not clobber
        assert rd.get(0x10000).version == 9
        rd.insert(desc(0x10000, version=12))
        assert rd.get(0x10000).version == 12

    def test_invalidate(self):
        rd = RegionDirectory()
        rd.insert(desc(0x10000))
        rd.invalidate(0x10000)
        assert rd.get(0x10000) is None

    def test_hit_rate_accounting(self):
        rd = RegionDirectory()
        rd.insert(desc(0x10000))
        rd.get(0x10000)
        rd.get(0x99000)
        assert rd.hit_rate() == 0.5
        rd.reset_stats()
        assert rd.hit_rate() == 0.0


class TestPageDirectory:
    def test_ensure_creates_once(self):
        pd = PageDirectory(node_id=1)
        e1 = pd.ensure(0x1000, rid=0x1000, homed=True)
        e2 = pd.ensure(0x1000, rid=0x1000, homed=False)
        assert e1 is e2
        assert e1.homed   # never downgraded

    def test_hint_upgraded_to_homed(self):
        pd = PageDirectory(node_id=1)
        pd.ensure(0x1000, rid=0x1000, homed=False)
        entry = pd.ensure(0x1000, rid=0x1000, homed=True)
        assert entry.homed

    def test_sharer_tracking(self):
        pd = PageDirectory(node_id=1)
        entry = pd.ensure(0x1000, rid=0x1000, homed=True)
        entry.record_sharer(2)
        entry.record_sharer(3)
        entry.owner = 3
        assert entry.copyset_excluding(2) == [3]
        entry.forget_sharer(3)
        assert entry.owner is None
        assert entry.sharers == {2}

    def test_entries_for_region_sorted(self):
        pd = PageDirectory(node_id=1)
        pd.ensure(0x3000, rid=0x1000, homed=True)
        pd.ensure(0x1000, rid=0x1000, homed=True)
        pd.ensure(0x9000, rid=0x9000, homed=True)
        addrs = [e.address for e in pd.entries_for_region(0x1000)]
        assert addrs == [0x1000, 0x3000]

    def test_homed_vs_hint_partition(self):
        pd = PageDirectory(node_id=1)
        pd.ensure(0x1000, rid=0x1000, homed=True)
        pd.ensure(0x2000, rid=0x1000, homed=False)
        assert [e.address for e in pd.homed_entries()] == [0x1000]
        assert [e.address for e in pd.hint_entries()] == [0x2000]

    def test_drop_region(self):
        pd = PageDirectory(node_id=1)
        pd.ensure(0x1000, rid=0x1000, homed=True)
        pd.ensure(0x2000, rid=0x1000, homed=True)
        pd.ensure(0x9000, rid=0x9000, homed=True)
        assert pd.drop_region(0x1000) == 2
        assert len(pd) == 1

    def test_forget_node_scrubs_copysets(self):
        pd = PageDirectory(node_id=1)
        a = pd.ensure(0x1000, rid=0x1000, homed=True)
        a.record_sharer(5)
        a.owner = 5
        b = pd.ensure(0x2000, rid=0x1000, homed=True)
        b.record_sharer(2)
        touched = pd.forget_node(5)
        assert [e.address for e in touched] == [0x1000]
        assert a.owner is None and 5 not in a.sharers
        assert b.sharers == {2}
