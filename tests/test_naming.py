"""Tests for the distributed directory (name) service."""

import pytest

from repro.api import create_cluster
from repro.core.attributes import ConsistencyLevel
from repro.naming import NameNotFound, NameService, NamingError


@pytest.fixture
def ns(cluster):
    return NameService.create(cluster.client(node=1))


class TestBasics:
    def test_bind_lookup_roundtrip(self, ns):
        ns.bind("/users/alice", {"uid": 1000, "shell": "/bin/sh"})
        assert ns.lookup("/users/alice")["uid"] == 1000

    def test_intermediate_contexts_created(self, ns):
        ns.bind("/org/eng/printers/laser1", {"room": "3rd floor"})
        bindings, children = ns.list("/org/eng/printers")
        assert bindings == ["laser1"]
        _b, top = ns.list("/")
        assert top == ["org"]

    def test_duplicate_bind_rejected(self, ns):
        ns.bind("/svc", {"v": 1})
        with pytest.raises(NamingError):
            ns.bind("/svc", {"v": 2})
        assert ns.lookup("/svc")["v"] == 1

    def test_rebind_replaces(self, ns):
        ns.bind("/svc", {"v": 1})
        ns.rebind("/svc", {"v": 2})
        assert ns.lookup("/svc")["v"] == 2

    def test_unbind(self, ns):
        ns.bind("/gone", {"x": 1})
        ns.unbind("/gone")
        assert not ns.exists("/gone")
        with pytest.raises(NameNotFound):
            ns.lookup("/gone")

    def test_lookup_missing_context(self, ns):
        with pytest.raises(NameNotFound):
            ns.lookup("/no/such/path")

    def test_relative_names_rejected(self, ns):
        with pytest.raises(NamingError):
            ns.bind("relative", {})

    def test_binding_vs_context_collision(self, ns):
        ns.bind("/x/y", {"leaf": True})   # /x is a context
        with pytest.raises(NamingError):
            ns.bind("/x", {"clobber": True})

    def test_list_distinguishes_kinds(self, ns):
        ns.bind("/a/leaf1", {})
        ns.bind("/a/leaf2", {})
        ns.bind("/a/sub/deeper", {})
        bindings, children = ns.list("/a")
        assert bindings == ["leaf1", "leaf2"]
        assert children == ["sub"]


class TestDistribution:
    def test_attach_from_other_node(self, cluster, ns):
        ns.bind("/shared/service", {"port": 8080})
        remote = NameService.attach(cluster.client(node=3), ns.root_addr)
        assert remote.lookup("/shared/service")["port"] == 8080

    def test_updates_visible_within_staleness_bound(self, cluster, ns):
        ns.bind("/cfg", {"gen": 1})
        remote = NameService.attach(cluster.client(node=3), ns.root_addr)
        assert remote.lookup("/cfg")["gen"] == 1
        ns.rebind("/cfg", {"gen": 2})
        cluster.run(4.0)   # eventual protocol converges
        assert remote.lookup("/cfg")["gen"] == 2

    def test_strict_registry_sees_updates_immediately(self, cluster):
        ns = NameService.create(
            cluster.client(node=1), consistency=ConsistencyLevel.STRICT
        )
        remote = NameService.attach(cluster.client(node=3), ns.root_addr)
        ns.bind("/lock-holder", {"node": 1})
        assert remote.lookup("/lock-holder")["node"] == 1
        remote_service = NameService.attach(
            cluster.client(node=2), ns.root_addr
        )
        remote_service.rebind("/lock-holder", {"node": 2})
        assert ns.lookup("/lock-holder")["node"] == 2

    def test_concurrent_binds_in_same_context(self, cluster):
        ns1 = NameService.create(
            cluster.client(node=1), consistency=ConsistencyLevel.STRICT
        )
        ns2 = NameService.attach(cluster.client(node=2), ns1.root_addr)
        for i in range(5):
            ns1.bind(f"/n1-{i}", {"i": i})
            ns2.bind(f"/n2-{i}", {"i": i})
        bindings, _children = ns1.list("/")
        assert len(bindings) == 10

    def test_directory_survives_with_replicas(self):
        cluster = create_cluster(num_nodes=6)
        ns = NameService.create(
            cluster.client(node=1),
            consistency=ConsistencyLevel.STRICT,
            replicas=2,
        )
        ns.bind("/durable", {"ok": True})
        cluster.run(2.0)
        cluster.crash(1)
        cluster.run(15.0)
        remote = NameService.attach(cluster.client(node=4), ns.root_addr)
        assert remote.lookup("/durable")["ok"] is True
