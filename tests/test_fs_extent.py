"""Tests for the extent file layout (paper Section 4.1's alternative:
"allocate each file into a single contiguous region, which would
require the filesystem to resize the region whenever the file size
changes")."""

import pytest

from repro.api import create_cluster
from repro.fs import KhazanaFileSystem
from repro.fs.layout import BLOCK_SIZE


@pytest.fixture
def fs(cluster):
    return KhazanaFileSystem.format(cluster.client(node=1))


class TestExtentFiles:
    def test_write_read_roundtrip(self, fs):
        with fs.create("/e.bin", layout="extent") as f:
            f.write(b"extent data")
        with fs.open("/e.bin") as f:
            assert f.read() == b"extent data"
        assert fs.stat("/e.bin").layout == "extent"

    def test_growth_resizes_single_region(self, fs):
        with fs.create("/grow.bin", layout="extent") as f:
            # 4 blocks up front puts the extent at the pool's tail,
            # so in-place growth has free space to claim.
            f.write(b"a" * (4 * BLOCK_SIZE))
            first_extent = fs.stat("/grow.bin").extent
            f.write(b"b" * (4 * BLOCK_SIZE))
        st = fs.stat("/grow.bin")
        assert st.size == 8 * BLOCK_SIZE
        assert st.extent == first_extent        # same region, resized
        assert st.extent_capacity >= 8 * BLOCK_SIZE
        assert st.blocks == []                  # no per-block regions
        with fs.open("/grow.bin") as f:
            data = f.read()
        assert data[: 4 * BLOCK_SIZE] == b"a" * (4 * BLOCK_SIZE)
        assert data[4 * BLOCK_SIZE :] == b"b" * (4 * BLOCK_SIZE)

    def test_capacity_doubles(self, fs):
        with fs.create("/cap.bin", layout="extent") as f:
            f.write(b"x")
            assert fs.stat("/cap.bin").extent_capacity == BLOCK_SIZE
            f.write(b"y" * BLOCK_SIZE)
        assert fs.stat("/cap.bin").extent_capacity == 2 * BLOCK_SIZE

    def test_relocation_when_neighbour_taken(self, fs):
        with fs.create("/a.bin", layout="extent") as f:
            f.write(b"a" * BLOCK_SIZE)
        first = fs.stat("/a.bin").extent
        # Reserve the space right after /a.bin's extent so in-place
        # growth is impossible.
        blocker = fs.session.reserve(BLOCK_SIZE)
        assert blocker.range.start == first + BLOCK_SIZE
        with fs.open("/a.bin", "a") as f:
            f.write(b"b" * BLOCK_SIZE)
        st = fs.stat("/a.bin")
        assert st.extent != first               # relocated
        with fs.open("/a.bin") as f:
            assert f.read() == b"a" * BLOCK_SIZE + b"b" * BLOCK_SIZE

    def test_truncate_shrinks_and_zeroes(self, fs):
        with fs.create("/t.bin", layout="extent") as f:
            f.write(b"z" * (4 * BLOCK_SIZE))
            f.truncate(100)
        st = fs.stat("/t.bin")
        assert st.size == 100
        assert st.extent_capacity == BLOCK_SIZE
        with fs.open("/t.bin", "a") as f:
            f.seek(0)
        with fs.open("/t.bin") as f:
            assert f.read() == b"z" * 100
        # Re-extend sparsely: the hole reads zero, not stale bytes.
        with fs.open("/t.bin", "a") as f:
            f.pwrite(2 * BLOCK_SIZE, b"end")
        with fs.open("/t.bin") as f:
            data = f.read()
        assert data[100 : 2 * BLOCK_SIZE] == b"\x00" * (2 * BLOCK_SIZE - 100)
        assert data[2 * BLOCK_SIZE:] == b"end"

    def test_sparse_truncate_up(self, fs):
        with fs.create("/s.bin", layout="extent") as f:
            f.write(b"head")
            f.truncate(3 * BLOCK_SIZE)
        with fs.open("/s.bin") as f:
            data = f.read()
        assert len(data) == 3 * BLOCK_SIZE
        assert data[:4] == b"head"
        assert set(data[4:]) == {0}

    def test_unlink_releases_extent(self, cluster, fs):
        with fs.create("/gone.bin", layout="extent") as f:
            f.write(b"q" * BLOCK_SIZE)
        extent = fs.stat("/gone.bin").extent
        fs.unlink("/gone.bin")
        cluster.run(5.0)
        from repro.core.errors import KhazanaError

        with pytest.raises(KhazanaError):
            cluster.client(node=1).read_at(extent, 4)

    def test_cross_node_sharing(self, cluster, fs):
        with fs.create("/shared.bin", layout="extent") as f:
            f.write(b"from site 1" + b"." * BLOCK_SIZE)
        other = KhazanaFileSystem.mount(
            cluster.client(node=3), fs.superblock_addr
        )
        with other.open("/shared.bin") as f:
            assert f.read(11) == b"from site 1"
        with other.open("/shared.bin", "a") as f:
            f.write(b"+site 3")
        with fs.open("/shared.bin") as f:
            f.seek(-7, 2)
            assert f.read() == b"+site 3"

    def test_unknown_layout_rejected(self, fs):
        from repro.fs import FileSystemError

        with pytest.raises(FileSystemError):
            fs.create("/bad.bin", layout="quantum")

    def test_layouts_coexist(self, cluster, fs):
        with fs.create("/b.bin", layout="blocks") as f:
            f.write(b"blocks" * 1000)
        with fs.create("/e.bin", layout="extent") as f:
            f.write(b"extent" * 1000)
        other = KhazanaFileSystem.mount(
            cluster.client(node=2), fs.superblock_addr
        )
        with other.open("/b.bin") as f:
            assert f.read(6) == b"blocks"
        with other.open("/e.bin") as f:
            assert f.read(6) == b"extent"
