"""Tests for the Bayou-inspired mobile protocol (paper Section 7)."""

import pytest

from repro.api import create_cluster
from repro.core.attributes import RegionAttributes
from repro.core.errors import LockDenied


def make_region(cluster, node=1, payload=b"mobile"):
    kz = cluster.client(node=node)
    desc = kz.reserve(
        4096, RegionAttributes(consistency_protocol="mobile")
    )
    kz.allocate(desc.rid)
    kz.write_at(desc.rid, payload)
    return kz, desc


class TestBasics:
    def test_write_read_roundtrip(self, cluster):
        kz, desc = make_region(cluster)
        assert kz.read_at(desc.rid, 6) == b"mobile"

    def test_replication_via_fetch(self, cluster):
        kz, desc = make_region(cluster)
        assert cluster.client(node=3).read_at(desc.rid, 6) == b"mobile"
        assert cluster.daemon(3).storage.contains(desc.rid)

    def test_gossip_propagates_updates(self, cluster):
        kz, desc = make_region(cluster, payload=b"v1")
        kz3 = cluster.client(node=3)
        assert kz3.read_at(desc.rid, 2) == b"v1"
        kz.write_at(desc.rid, b"v2")
        cluster.run(4.0)   # anti-entropy rounds
        page = cluster.daemon(3).storage.peek(desc.rid)
        assert page is not None and page.data[:2] == b"v2"

    def test_read_your_writes_locally(self, cluster):
        kz, desc = make_region(cluster)
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 6)
        kz3.write_at(desc.rid, b"my-own")
        assert kz3.read_at(desc.rid, 6) == b"my-own"


class TestDisconnectedOperation:
    def test_writes_succeed_while_partitioned(self, cluster):
        kz1, desc = make_region(cluster, payload=b"base")
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 4)   # node 3 has a replica
        cluster.partition({0, 1}, {2, 3})
        # Both sides keep writing their replicas — no errors.
        kz1.write_at(desc.rid, b"side-A")
        kz3.write_at(desc.rid, b"side-B")
        assert kz1.read_at(desc.rid, 6) == b"side-A"
        assert kz3.read_at(desc.rid, 6) == b"side-B"

    def test_reconciliation_after_heal(self, cluster):
        kz1, desc = make_region(cluster, payload=b"base")
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 4)
        cluster.partition({0, 1}, {2, 3})
        kz1.write_at(desc.rid, b"side-A")
        cluster.run(1.0)
        kz3.write_at(desc.rid, b"side-B")   # higher Lamport stamp? equal
        kz3.write_at(desc.rid, b"side-B2")  # definitely ahead now
        cluster.run(2.0)
        cluster.heal()
        cluster.run(6.0)   # epidemic reconciliation
        a = cluster.client(node=1).read_at(desc.rid, 7)
        b = cluster.client(node=3).read_at(desc.rid, 7)
        assert a == b   # converged
        assert a == b"side-B2"   # LWW: highest (counter, node) wins

    def test_disconnected_first_write_starts_from_zero(self, cluster):
        kz1, desc = make_region(cluster)
        # Node 3 knows the region (metadata cached while connected,
        # as any mobile client would) but never fetched the page.
        kz3 = cluster.client(node=3)
        kz3.get_attributes(desc.rid)
        cluster.partition({3}, {0, 1, 2})
        kz3.write_at(desc.rid, b"lonely")
        assert kz3.read_at(desc.rid, 6) == b"lonely"
        cluster.heal()
        cluster.run(6.0)
        # The disconnected write reconciles into the rest of the
        # system once connectivity returns.
        assert cluster.client(node=1).read_at(desc.rid, 6) == b"lonely"

    def test_disconnected_read_without_replica_fails(self, cluster):
        from repro.core.errors import KhazanaError

        kz1, desc = make_region(cluster)
        kz3 = cluster.client(node=3)
        kz3.get_attributes(desc.rid)   # knows the region...
        cluster.partition({3}, {0, 1, 2})
        with pytest.raises((LockDenied, KhazanaError)):
            kz3.read_at(desc.rid, 4)   # ...but has no replica to serve

    def test_stale_gossiper_gets_taught(self, cluster):
        """Bidirectional anti-entropy: a replica pushing an old stamp
        receives the newer version back."""
        kz1, desc = make_region(cluster, payload=b"old")
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 3)
        cluster.partition({0, 1}, {2, 3})
        kz1.write_at(desc.rid, b"new")   # node 3 cannot hear this
        cluster.heal()
        # Node 3 gossips its stale version at node 1; node 1 answers
        # with the newer one.
        cluster.run(6.0)
        page = cluster.daemon(3).storage.peek(desc.rid)
        assert page is not None and page.data[:3] == b"new"


class TestConvergenceProperty:
    def test_many_writers_converge_everywhere(self, cluster):
        kz1, desc = make_region(cluster)
        sessions = [cluster.client(node=n) for n in range(4)]
        for session in sessions:
            session.read_at(desc.rid, 1)
        for i in range(12):
            sessions[i % 4].write_at(desc.rid, f"w{i:02d}".encode())
        cluster.run(10.0)
        finals = {
            bytes(cluster.daemon(n).storage.peek(desc.rid).data[:3])
            for n in range(4)
        }
        assert len(finals) == 1
