"""Tests for the Section 4.2 distributed object runtime."""

import pytest

from repro.api import create_cluster
from repro.core.attributes import ConsistencyLevel
from repro.objects import (
    InvocationPolicy,
    KhazanaObject,
    ObjectError,
    ObjectRuntime,
    readonly,
    register_class,
)
from repro.objects.model import decode_state, encode_state
from repro.objects.registry import clear_registry, registered_classes


@register_class
class Account(KhazanaObject):
    @staticmethod
    def initial_state():
        return {"balance": 0, "history": []}

    def deposit(self, state, amount):
        state["balance"] += amount
        state["history"].append(amount)
        return state["balance"]

    def withdraw(self, state, amount):
        if amount > state["balance"]:
            raise ValueError("insufficient funds")
        state["balance"] -= amount
        state["history"].append(-amount)
        return state["balance"]

    @readonly
    def balance(self, state):
        return state["balance"]

    @readonly
    def history(self, state):
        return list(state["history"])


class TestStateCodec:
    def test_roundtrip(self):
        doc = {"a": 1, "b": [1, 2], "c": "x"}
        assert decode_state(encode_state(doc, 4096)) == doc

    def test_overflow_rejected(self):
        with pytest.raises(ObjectError):
            encode_state({"k": "v" * 5000}, 4096)

    def test_empty_page_decodes_empty(self):
        assert decode_state(b"\x00" * 64) == {}


class TestRegistry:
    def test_account_registered(self):
        assert "Account" in registered_classes()

    def test_conflicting_name_rejected(self):
        class Impostor(KhazanaObject):
            pass

        with pytest.raises(ObjectError):
            register_class(Impostor, name="Account")


class TestLifecycle:
    def test_export_and_invoke(self, cluster):
        rt = ObjectRuntime(cluster.client(node=1))
        ref = rt.export(Account)
        acct = rt.proxy(ref)
        assert acct.deposit(100) == 100
        assert acct.withdraw(30) == 70
        assert acct.balance() == 70
        assert acct.history() == [100, -30]

    def test_exceptions_propagate(self, cluster):
        rt = ObjectRuntime(cluster.client(node=1))
        acct = rt.proxy(rt.export(Account))
        with pytest.raises(ValueError):
            acct.withdraw(1)

    def test_attach_by_address(self, cluster):
        rt1 = ObjectRuntime(cluster.client(node=1))
        rt3 = ObjectRuntime(cluster.client(node=3))
        ref = rt1.export(Account)
        rt1.proxy(ref).deposit(42)
        attached = rt3.attach(ref.address)
        assert attached.class_name == "Account"
        assert rt3.proxy(attached).balance() == 42

    def test_unknown_method_rejected(self, cluster):
        rt = ObjectRuntime(cluster.client(node=1))
        acct = rt.proxy(rt.export(Account))
        with pytest.raises(ObjectError):
            acct.explode()

    def test_proxy_attributes_immutable(self, cluster):
        rt = ObjectRuntime(cluster.client(node=1))
        acct = rt.proxy(rt.export(Account))
        with pytest.raises(ObjectError):
            acct.balance_field = 5

    def test_refcounting_releases_region(self, cluster):
        rt = ObjectRuntime(cluster.client(node=1))
        ref = rt.export(Account)
        assert rt.retain(ref) == 2
        assert rt.release(ref) == 1
        assert rt.release(ref) == 0
        cluster.run(5.0)
        from repro.core.errors import KhazanaError

        with pytest.raises(KhazanaError):
            cluster.client(node=1).read_at(ref.address, 4)


class TestPolicies:
    def test_remote_policy_executes_at_home(self, cluster):
        rt1 = ObjectRuntime(cluster.client(node=1))
        rt3 = ObjectRuntime(cluster.client(node=3))
        ref = rt1.export(Account)
        remote = rt3.proxy(ref, policy=InvocationPolicy.REMOTE)
        assert remote.deposit(5) == 5
        assert rt3.stats["remote_invocations"] == 1
        assert rt1.stats["served_invocations"] == 1
        # The object's state never got cached on node 3.
        assert not cluster.daemon(3).storage.contains(ref.address)

    def test_local_policy_pulls_replica(self, cluster):
        rt1 = ObjectRuntime(cluster.client(node=1))
        rt3 = ObjectRuntime(cluster.client(node=3))
        ref = rt1.export(Account)
        rt1.proxy(ref).deposit(10)
        local = rt3.proxy(ref, policy=InvocationPolicy.LOCAL)
        assert local.balance() == 10
        assert cluster.daemon(3).storage.contains(ref.address)
        assert rt3.stats["remote_invocations"] == 0

    def test_adaptive_localizes_after_repeated_use(self, cluster):
        rt1 = ObjectRuntime(cluster.client(node=1))
        rt3 = ObjectRuntime(cluster.client(node=3),
                            policy=InvocationPolicy.ADAPTIVE)
        ref = rt1.export(Account)
        acct = rt3.proxy(ref)
        for _ in range(5):
            acct.deposit(1)
        # Early calls were remote; later calls ran locally.
        assert rt3.stats["remote_invocations"] >= 1
        assert rt3.stats["local_invocations"] >= 1
        assert acct.balance() == 5

    def test_consistency_across_replicas(self, cluster):
        """Both runtimes invoke locally; Khazana CREW keeps the
        replicas coherent (the paper's core pitch for this layer)."""
        rt1 = ObjectRuntime(cluster.client(node=1),
                            policy=InvocationPolicy.LOCAL)
        rt2 = ObjectRuntime(cluster.client(node=2),
                            policy=InvocationPolicy.LOCAL)
        ref = rt1.export(Account)
        a1 = rt1.proxy(ref)
        a2 = rt2.proxy(ref)
        a1.deposit(10)
        a2.deposit(5)
        assert a1.balance() == 15
        assert a2.balance() == 15

    def test_replicated_object_with_eventual_consistency(self, cluster):
        rt1 = ObjectRuntime(cluster.client(node=1))
        ref = rt1.export(Account, consistency=ConsistencyLevel.EVENTUAL)
        acct = rt1.proxy(ref)
        acct.deposit(7)
        assert acct.balance() == 7
