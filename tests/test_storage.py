"""Tests for the local storage hierarchy (paper Section 3.4)."""

import pytest

from repro.core.errors import StorageExhausted
from repro.storage.disk import DiskStore, FileBackedDiskStore, access_cost
from repro.storage.hierarchy import StorageHierarchy
from repro.storage.memory import MemoryStore
from repro.storage.store import StoredPage

PAGE = 4096


def page(addr, fill=b"x", dirty=False):
    return StoredPage(addr, fill * PAGE if len(fill) == 1 else fill,
                      dirty=dirty)


class TestMemoryStore:
    def test_put_get_remove(self):
        store = MemoryStore(4 * PAGE)
        store.put(page(0))
        assert store.get(0).data[:1] == b"x"
        assert store.contains(0)
        assert store.remove(0).address == 0
        assert not store.contains(0)

    def test_capacity_enforced(self):
        store = MemoryStore(2 * PAGE)
        store.put(page(0))
        store.put(page(PAGE))
        with pytest.raises(StorageExhausted):
            store.put(page(2 * PAGE))

    def test_replace_same_page_no_double_count(self):
        store = MemoryStore(2 * PAGE)
        store.put(page(0))
        store.put(page(0, b"y"))
        assert store.used_bytes() == PAGE
        assert store.get(0).data[:1] == b"y"

    def test_lru_order_updates_on_get(self):
        store = MemoryStore(4 * PAGE)
        for i in range(3):
            store.put(page(i * PAGE))
        store.get(0)   # 0 becomes most recent
        assert store.lru_candidates() == [PAGE, 2 * PAGE, 0]

    def test_peek_does_not_touch_lru(self):
        store = MemoryStore(4 * PAGE)
        store.put(page(0))
        store.put(page(PAGE))
        store.peek(0)
        assert store.lru_candidates()[0] == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MemoryStore(0)


class TestMemoryStoreCachedViews:
    """addresses()/lru_candidates() return cached snapshots; every
    mutation (and, for LRU, every reordering get) must invalidate."""

    def make(self):
        store = MemoryStore(8 * PAGE)
        for i in range(3):
            store.put(page(i * PAGE))
        return store

    def test_views_are_stable_across_reads(self):
        store = self.make()
        assert store.addresses() is store.addresses()
        assert store.lru_candidates() is store.lru_candidates()
        store.peek(0)   # peek neither reorders nor invalidates
        assert store.lru_candidates() is store.lru_candidates()

    def test_put_invalidates_both_views(self):
        store = self.make()
        addrs, lru = store.addresses(), store.lru_candidates()
        store.put(page(3 * PAGE))
        assert store.addresses() == [0, PAGE, 2 * PAGE, 3 * PAGE]
        assert store.lru_candidates()[-1] == 3 * PAGE
        assert addrs == [0, PAGE, 2 * PAGE]   # old snapshot untouched
        assert lru == [0, PAGE, 2 * PAGE]

    def test_replacing_put_keeps_address_view_but_reorders_lru(self):
        store = self.make()
        addrs = store.addresses()
        store.lru_candidates()
        store.put(page(0, b"y"))   # same address: membership unchanged
        assert store.addresses() is addrs
        assert store.lru_candidates() == [PAGE, 2 * PAGE, 0]

    def test_remove_invalidates_both_views(self):
        store = self.make()
        store.addresses(), store.lru_candidates()
        store.remove(PAGE)
        assert store.addresses() == [0, 2 * PAGE]
        assert store.lru_candidates() == [0, 2 * PAGE]

    def test_get_invalidates_lru_view_only(self):
        store = self.make()
        addrs = store.addresses()
        store.lru_candidates()
        store.get(0)
        assert store.lru_candidates() == [PAGE, 2 * PAGE, 0]
        assert store.addresses() is addrs


class TestDiskStore:
    def test_basic_ops(self):
        store = DiskStore(4 * PAGE)
        store.put(page(0, b"d"))
        assert store.get(0).data[:1] == b"d"
        assert store.used_bytes() == PAGE
        store.remove(0)
        assert store.used_bytes() == 0

    def test_access_cost_scales_with_size(self):
        assert access_cost(2 * PAGE) > access_cost(PAGE) > 0


class TestFileBackedDiskStore:
    def test_persistence_across_instances(self, tmp_path):
        d = str(tmp_path / "spill")
        store = FileBackedDiskStore(d, 16 * PAGE)
        store.put(page(0x1000, b"p", dirty=True))
        store.put(page(0x2000, b"q"))
        # A "restarted daemon" re-scans the same directory.
        revived = FileBackedDiskStore(d, 16 * PAGE)
        assert sorted(revived.addresses()) == [0x1000, 0x2000]
        got = revived.get(0x1000)
        assert got.data[:1] == b"p"
        assert got.dirty is True
        assert revived.get(0x2000).dirty is False

    def test_dirty_transition_renames(self, tmp_path):
        d = str(tmp_path / "spill")
        store = FileBackedDiskStore(d, 16 * PAGE)
        store.put(page(0x1000, b"a", dirty=True))
        store.put(page(0x1000, b"b", dirty=False))
        revived = FileBackedDiskStore(d, 16 * PAGE)
        assert revived.get(0x1000).dirty is False
        assert revived.used_bytes() == PAGE

    def test_remove_deletes_file(self, tmp_path):
        d = str(tmp_path / "spill")
        store = FileBackedDiskStore(d, 16 * PAGE)
        store.put(page(0x1000))
        store.remove(0x1000)
        assert FileBackedDiskStore(d, 16 * PAGE).addresses() == []


class TestHierarchy:
    def make(self, mem_pages=2, disk_pages=4, pinned=(), on_evict=None):
        pinned_set = set(pinned)
        return StorageHierarchy(
            memory=MemoryStore(mem_pages * PAGE),
            disk=DiskStore(disk_pages * PAGE),
            is_pinned=lambda a: a in pinned_set,
            on_disk_evict=on_evict or (lambda p: True),
        )

    def test_ram_hit_is_free(self):
        h = self.make()
        h.store(page(0))
        got, cost = h.load(0)
        assert got is not None and cost == 0.0
        assert h.stats.ram_hits == 1

    def test_victimization_to_disk(self):
        h = self.make(mem_pages=2)
        for i in range(3):
            h.store(page(i * PAGE))
        assert h.stats.victimized_to_disk == 1
        assert h.disk.contains(0)          # LRU victim was page 0
        assert h.memory.contains(2 * PAGE)

    def test_disk_hit_promotes_and_charges(self):
        h = self.make(mem_pages=2)
        for i in range(3):
            h.store(page(i * PAGE))
        got, cost = h.load(0)
        assert got is not None
        assert cost > 0
        assert h.stats.disk_hits == 1
        assert h.memory.contains(0)

    def test_miss_counted(self):
        h = self.make()
        got, _ = h.load(0xDEAD000)
        assert got is None
        assert h.stats.misses == 1

    def test_pinned_pages_never_victimized(self):
        h = self.make(mem_pages=2, pinned=(0,))
        h.store(page(0))
        h.store(page(PAGE))
        h.store(page(2 * PAGE))
        assert h.memory.contains(0)
        assert h.disk.contains(PAGE)

    def test_all_pinned_raises(self):
        h = self.make(mem_pages=2, pinned=(0, PAGE, 2 * PAGE))
        h.store(page(0))
        h.store(page(PAGE))
        with pytest.raises(StorageExhausted):
            h.store(page(2 * PAGE))

    def test_disk_eviction_invokes_consistency_hook(self):
        evicted = []
        h = self.make(mem_pages=1, disk_pages=1,
                      on_evict=lambda p: (evicted.append(p.address), True)[1])
        h.store(page(0))
        h.store(page(PAGE))       # 0 victimized to disk
        h.store(page(2 * PAGE))   # PAGE victimized; disk full: 0 evicted
        assert evicted == [0]
        assert h.stats.evicted_from_disk == 1

    def test_eviction_veto_raises(self):
        h = self.make(mem_pages=1, disk_pages=1, on_evict=lambda p: False)
        h.store(page(0))
        h.store(page(PAGE))
        with pytest.raises(StorageExhausted):
            h.store(page(2 * PAGE))

    def test_drop_removes_from_both_levels(self):
        h = self.make(mem_pages=1)
        h.store(page(0))
        h.store(page(PAGE))   # 0 now on disk
        assert h.drop(0).address == 0
        assert h.drop(PAGE).address == PAGE
        assert h.resident_addresses() == []

    def test_store_supersedes_stale_disk_copy(self):
        h = self.make(mem_pages=1)
        h.store(page(0, b"a"))
        h.store(page(PAGE))          # page 0 victimized to disk
        h.store(page(0, b"b"))       # fresh copy arrives
        got, _ = h.load(0)
        assert got.data[:1] == b"b"

    def test_mark_clean(self):
        h = self.make()
        h.store(page(0, b"a", dirty=True))
        assert h.dirty_addresses() == [0]
        h.mark_clean(0)
        assert h.dirty_addresses() == []

    def test_write_through_persists(self):
        h = self.make()
        h.write_through(page(0, b"m"))
        assert h.memory.contains(0)
        assert h.disk.contains(0)

    def test_hit_rate_stats(self):
        h = self.make()
        h.store(page(0))
        h.load(0)
        h.load(0xBAD000)
        assert h.stats.hit_rate() == 0.5
        assert h.stats.ram_hit_rate() == 0.5
