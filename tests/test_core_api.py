"""Integration tests for the Khazana client API (paper Section 2).

Exercises the full operation set — reserve/unreserve, allocate/free,
lock/unlock, read/write, get/set attributes — through real daemons on
the simulated network.
"""

import pytest

from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.errors import (
    AccessDenied,
    InvalidLockContext,
    InvalidRange,
    NotAllocated,
    RegionInUse,
    RegionNotFound,
)
from repro.core.locks import LockMode
from repro.core.security import AccessControlList, Right


class TestReserve:
    def test_reserve_returns_page_aligned_region(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(10_000)   # rounds up to 3 pages
        assert desc.range.length == 12_288
        assert desc.range.start % 4096 == 0
        assert desc.home_nodes == (1,)

    def test_regions_do_not_overlap(self, cluster):
        kz = cluster.client(node=1)
        descs = [kz.reserve(4096) for _ in range(20)]
        for i, a in enumerate(descs):
            for b in descs[i + 1:]:
                assert not a.range.overlaps(b.range)

    def test_reserves_from_different_nodes_disjoint(self, cluster):
        descs = []
        for node in range(4):
            kz = cluster.client(node=node)
            descs.extend(kz.reserve(8192) for _ in range(5))
        for i, a in enumerate(descs):
            for b in descs[i + 1:]:
                assert not a.range.overlaps(b.range)

    def test_min_replicas_picks_multiple_homes(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(4096, RegionAttributes(min_replicas=3))
        assert len(desc.home_nodes) == 3
        assert desc.home_nodes[0] == 1

    def test_larger_page_size(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(100_000, RegionAttributes(page_size=65536))
        assert desc.range.length == 131072
        assert desc.range.start % 65536 == 0

    def test_rejects_nonpositive_size(self, cluster):
        kz = cluster.client(node=1)
        with pytest.raises(InvalidRange):
            kz.reserve(0)


class TestAccess:
    def test_lock_before_allocate_fails(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        with pytest.raises(NotAllocated):
            kz.lock(desc.rid, 4096, LockMode.READ)

    def test_write_then_read_same_node(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        kz.write_at(desc.rid, b"payload")
        assert kz.read_at(desc.rid, 7) == b"payload"

    def test_fresh_pages_read_as_zero(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        assert kz.read_at(desc.rid, 16) == b"\x00" * 16

    def test_cross_node_read(self, cluster):
        writer = cluster.client(node=1)
        desc = writer.reserve(4096)
        writer.allocate(desc.rid)
        writer.write_at(desc.rid, b"shared-state")
        reader = cluster.client(node=3)
        assert reader.read_at(desc.rid, 12) == b"shared-state"

    def test_multi_page_write_and_read(self, cluster):
        kz = cluster.client(node=2)
        desc = kz.reserve(4 * 4096)
        kz.allocate(desc.rid)
        blob = bytes(i % 256 for i in range(3 * 4096 + 100))
        kz.write_at(desc.rid + 2000, blob)
        assert kz.read_at(desc.rid + 2000, len(blob)) == blob

    def test_unaligned_offsets(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(2 * 4096)
        kz.allocate(desc.rid)
        kz.write_at(desc.rid + 4090, b"spans-a-page-boundary")
        assert kz.read_at(desc.rid + 4090, 21) == b"spans-a-page-boundary"

    def test_mapped_view(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        with kz.map(desc.rid, 4096, LockMode.WRITE) as view:
            view.write(100, b"mapped")
            assert view.read(100, 6) == b"mapped"
        assert kz.read_at(desc.rid + 100, 6) == b"mapped"

    def test_unknown_address_fails(self, cluster):
        kz = cluster.client(node=1)
        with pytest.raises(RegionNotFound):
            kz.read_at(0x500000000000, 4)

    def test_lock_across_region_boundary_rejected(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        with pytest.raises((InvalidRange, RegionNotFound)):
            kz.lock(desc.rid + 2048, 4096, LockMode.READ)


class TestLockContexts:
    def test_read_context_rejects_write(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        ctx = kz.lock(desc.rid, 4096, LockMode.READ)
        with pytest.raises(InvalidLockContext):
            kz.write(ctx, desc.rid, b"nope")
        kz.unlock(ctx)

    def test_context_unusable_after_unlock(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        ctx = kz.lock(desc.rid, 4096, LockMode.READ)
        kz.unlock(ctx)
        with pytest.raises(InvalidLockContext):
            kz.read(ctx, desc.rid, 4)  # khz: allow-stale-context(this test exists to prove the stale read raises)

    def test_context_covers_only_locked_range(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(2 * 4096)
        kz.allocate(desc.rid)
        ctx = kz.lock(desc.rid, 4096, LockMode.WRITE)
        with pytest.raises(InvalidLockContext):
            kz.read(ctx, desc.rid + 4096, 4)
        kz.unlock(ctx)

    def test_double_unlock_raises(self, cluster):
        # Unlocking a closed context is a client bug (acquire-side
        # validation), distinct from release-type *network* failures,
        # which are still retried in the background and never surface.
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        ctx = kz.lock(desc.rid, 4096, LockMode.READ)
        kz.unlock(ctx)
        with pytest.raises(InvalidLockContext):
            kz.unlock(ctx)

    def test_concurrent_read_locks(self, cluster):
        kz1 = cluster.client(node=1)
        kz2 = cluster.client(node=2)
        desc = kz1.reserve(4096)
        kz1.allocate(desc.rid)
        kz1.write_at(desc.rid, b"r")
        c1 = kz1.lock(desc.rid, 4096, LockMode.READ)
        c2 = kz2.lock(desc.rid, 4096, LockMode.READ)
        assert kz1.read(c1, desc.rid, 1) == b"r"
        assert kz2.read(c2, desc.rid, 1) == b"r"
        kz1.unlock(c1)
        kz2.unlock(c2)


class TestAttributesOps:
    def test_get_attributes(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(
            4096, RegionAttributes(consistency_level=ConsistencyLevel.RELEASE)
        )
        attrs = cluster.client(node=3).get_attributes(desc.rid)
        assert attrs.consistency_level is ConsistencyLevel.RELEASE

    def test_set_attributes_updates_version(self, cluster):
        kz = cluster.client(node=1, principal="alice")
        desc = kz.reserve(4096)
        new_attrs = desc.attrs.with_replicas(2)
        updated = kz.set_attributes(desc.rid, new_attrs)
        assert updated.version > desc.version
        assert kz.get_attributes(desc.rid).min_replicas == 2

    def test_page_size_immutable(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        with pytest.raises(InvalidRange):
            kz.set_attributes(
                desc.rid, RegionAttributes(page_size=8192)
            )


class TestAccessControl:
    def test_private_region_blocks_stranger(self, cluster):
        alice = cluster.client(node=1, principal="alice")
        desc = alice.reserve(
            4096,
            RegionAttributes(acl=AccessControlList.private("alice")),
        )
        alice.allocate(desc.rid)
        alice.write_at(desc.rid, b"secret")
        bob = cluster.client(node=2, principal="bob")
        with pytest.raises(AccessDenied):
            bob.read_at(desc.rid, 6)

    def test_read_only_grant(self, cluster):
        alice = cluster.client(node=1, principal="alice")
        acl = AccessControlList.private("alice").granting("bob", Right.READ)
        desc = alice.reserve(4096, RegionAttributes(acl=acl))
        alice.allocate(desc.rid)
        alice.write_at(desc.rid, b"readable")
        bob = cluster.client(node=2, principal="bob")
        assert bob.read_at(desc.rid, 8) == b"readable"
        with pytest.raises(AccessDenied):
            bob.write_at(desc.rid, b"x")

    def test_home_enforces_acl_despite_stale_cached_descriptor(self, cluster):
        """Defense in depth: even if a requester's daemon holds a
        stale descriptor with a permissive ACL, the home re-checks
        against the authoritative one (paper 3.2: 'Khazana checks the
        region's access permissions')."""
        alice = cluster.client(node=1, principal="alice")
        open_attrs = RegionAttributes()   # world-accessible at first
        desc = alice.reserve(4096, open_attrs)
        alice.allocate(desc.rid)
        alice.write_at(desc.rid, b"soon-private")
        bob = cluster.client(node=2, principal="bob")
        assert bob.read_at(desc.rid, 12) == b"soon-private"
        # Alice locks bob out; bob's node still caches the open ACL.
        alice.set_attributes(
            desc.rid,
            open_attrs.with_acl(AccessControlList.private("alice")),
        )
        # Drop bob's local copy so the next read must hit the home.
        cluster.daemon(2).drop_local_page(desc.rid)
        cm = cluster.daemon(2).consistency_manager("crew")
        cm.page_state.pop(desc.rid, None)
        with pytest.raises(AccessDenied):
            bob.read_at(desc.rid, 12)

    def test_remote_acl_enforced_for_release_protocol(self, cluster):
        alice = cluster.client(node=1, principal="alice")
        acl = AccessControlList.private("alice").granting("bob", Right.READ)
        desc = alice.reserve(
            4096,
            RegionAttributes(
                consistency_level=ConsistencyLevel.RELEASE, acl=acl
            ),
        )
        alice.allocate(desc.rid)
        alice.write_at(desc.rid, b"release-data")
        bob = cluster.client(node=2, principal="bob")
        assert bob.read_at(desc.rid, 12) == b"release-data"
        with pytest.raises(AccessDenied):
            bob.write_at(desc.rid, b"denied")

    def test_admin_needed_for_set_attributes(self, cluster):
        alice = cluster.client(node=1, principal="alice")
        acl = AccessControlList.private("alice").granting(
            "bob", Right.READ | Right.WRITE
        )
        desc = alice.reserve(4096, RegionAttributes(acl=acl))
        bob = cluster.client(node=2, principal="bob")
        with pytest.raises(AccessDenied):
            bob.set_attributes(desc.rid, RegionAttributes(acl=acl))


class TestUnreserveAndFree:
    def test_unreserve_releases_address_space(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        kz.write_at(desc.rid, b"bye")
        kz.unreserve(desc.rid)
        cluster.run(5.0)   # let background teardown finish
        with pytest.raises(RegionNotFound):
            cluster.client(node=3).read_at(desc.rid, 3)

    def test_unreserve_with_live_lock_rejected(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        ctx = kz.lock(desc.rid, 4096, LockMode.READ)
        with pytest.raises(RegionInUse):
            kz.unreserve(desc.rid)
        kz.unlock(ctx)

    def test_free_subrange_drops_storage(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(2 * 4096)
        kz.allocate(desc.rid)
        kz.write_at(desc.rid, b"a" * 8192)
        kz.free(desc.rid, 4096, 4096)
        cluster.run(2.0)
        # Freed page reads as zero again after re-allocation.
        kz.allocate(desc.rid, 4096, 4096)
        assert kz.read_at(desc.rid + 4096, 4) == b"\x00" * 4
        assert kz.read_at(desc.rid, 4) == b"aaaa"

    def test_unreserve_unknown_region(self, cluster):
        kz = cluster.client(node=1)
        with pytest.raises(RegionNotFound):
            kz.unreserve(0x700000000000)


class TestPersistenceAcrossProtocols:
    @pytest.mark.parametrize("level", list(ConsistencyLevel))
    def test_write_read_roundtrip_each_protocol(self, cluster, level):
        kz = cluster.client(node=1)
        desc = kz.reserve(4096, RegionAttributes(consistency_level=level))
        kz.allocate(desc.rid)
        kz.write_at(desc.rid, b"proto-" + level.value.encode())
        got = kz.read_at(desc.rid, 6 + len(level.value))
        assert got == b"proto-" + level.value.encode()
