"""Tests for the runtime seam (repro.net.runtime / repro.net.aio).

The seam's contract is behavioural: code written against the
:class:`~repro.net.clock.EventScheduler` timer vocabulary must run
unchanged over a :class:`~repro.net.runtime.Runtime`, and the sim
backend must be a *pure* delegation shim — same events, same order,
same labels as scheduling on the raw scheduler.
"""

from __future__ import annotations

import pytest

from repro.net.aio import AsyncioDriver, AsyncioRuntime
from repro.net.clock import EventScheduler
from repro.net.runtime import Runtime, SimRuntime, TimerHandle
from repro.net.sim import SimNetwork
from repro.net.tasks import Future


def _sim_runtime():
    scheduler = EventScheduler()
    return SimRuntime(scheduler, SimNetwork(scheduler)), scheduler


class TestSimRuntime:
    def test_is_a_runtime(self):
        runtime, _ = _sim_runtime()
        assert isinstance(runtime, Runtime)
        assert runtime.name == "sim"

    def test_timers_property_exposes_the_raw_scheduler(self):
        runtime, scheduler = _sim_runtime()
        assert runtime.timers is scheduler

    def test_clock_delegates(self):
        runtime, scheduler = _sim_runtime()
        assert runtime.now == scheduler.now
        scheduler.call_later(2.5, lambda: None, label="advance")
        scheduler.run_until_idle()
        assert runtime.now == pytest.approx(scheduler.now)

    def test_scheduling_lands_on_the_wrapped_scheduler(self):
        runtime, scheduler = _sim_runtime()
        fired = []
        runtime.call_later(1.0, lambda: fired.append("later"), label="a")
        runtime.call_at(0.5, lambda: fired.append("at"), label="b")
        runtime.call_soon(lambda: fired.append("soon"), label="c")
        scheduler.run_until_idle()
        assert fired == ["soon", "at", "later"]

    def test_handles_satisfy_the_seam_vocabulary(self):
        runtime, scheduler = _sim_runtime()
        handle = runtime.call_later(1.0, lambda: None, label="victim")
        assert isinstance(handle, TimerHandle)
        assert handle.label == "victim"
        assert handle.when == pytest.approx(1.0)
        handle.cancel()
        assert handle.cancelled
        fired = []
        runtime.call_later(2.0, lambda: fired.append(True), label="live")
        scheduler.run_until_idle()
        assert fired == [True]


class TestAsyncioRuntime:
    def test_timer_fires_and_run_future_returns(self):
        runtime = AsyncioRuntime()
        try:
            future = Future(label="t")
            runtime.call_later(0.01, lambda: future.set_result(42),
                               label="fire")
            assert runtime.run_future(future, timeout=5.0) == 42
        finally:
            runtime.close()

    def test_cancelled_timer_does_not_fire(self):
        runtime = AsyncioRuntime()
        try:
            fired = []
            victim = runtime.call_later(0.01, lambda: fired.append(True),
                                        label="victim")
            victim.cancel()
            assert victim.cancelled
            future = Future(label="t")
            runtime.call_later(0.05, lambda: future.set_result(None),
                               label="fence")
            runtime.run_future(future, timeout=5.0)
            assert fired == []
        finally:
            runtime.close()

    def test_run_future_propagates_exceptions(self):
        runtime = AsyncioRuntime()
        try:
            future = Future(label="t")
            runtime.call_later(
                0.01,
                lambda: future.set_exception(RuntimeError("boom")),
                label="fire",
            )
            with pytest.raises(RuntimeError, match="boom"):
                runtime.run_future(future, timeout=5.0)
        finally:
            runtime.close()

    def test_run_future_times_out_in_wall_time(self):
        runtime = AsyncioRuntime()
        try:
            with pytest.raises(TimeoutError):
                runtime.run_future(Future(label="never"), timeout=0.05)
        finally:
            runtime.close()

    def test_bad_timer_callback_does_not_kill_the_loop(self):
        runtime = AsyncioRuntime()
        try:
            def explode() -> None:
                raise RuntimeError("poisoned timer")

            runtime.call_later(0.0, explode, label="poison")
            future = Future(label="t")
            runtime.call_later(0.02, lambda: future.set_result("alive"),
                               label="fence")
            assert runtime.run_future(future, timeout=5.0) == "alive"
        finally:
            runtime.close()

    def test_driver_blocks_until_resolution(self):
        runtime = AsyncioRuntime()
        try:
            driver = AsyncioDriver(runtime, timeout=5.0)
            future = Future(label="t")
            runtime.call_later(0.01, lambda: future.set_result("done"),
                               label="fire")
            assert driver.wait(future) == "done"
        finally:
            runtime.close()

    def test_negative_delay_is_rejected(self):
        runtime = AsyncioRuntime()
        try:
            with pytest.raises(ValueError):
                runtime.call_later(-0.1, lambda: None, label="bad")
        finally:
            runtime.close()
