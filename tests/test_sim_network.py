"""Tests for the simulated network: latency, loss, partitions, stats."""

import pytest

from repro.net.clock import EventScheduler
from repro.net.message import Message, MessageType
from repro.net.sim import (
    LAN_LATENCY,
    WAN_LATENCY,
    LinkSpec,
    SimNetwork,
    Topology,
)


def make_net(topology=None, seed=0):
    sched = EventScheduler()
    net = SimNetwork(sched, topology, seed=seed)
    return sched, net


def msg(src, dst, payload=None):
    return Message(MessageType.PING, src=src, dst=dst, payload=payload or {})


class TestDelivery:
    def test_message_delivered_to_handler(self):
        sched, net = make_net()
        got = []
        net.attach(1, lambda m: got.append(m))
        net.attach(2, lambda m: got.append(m))
        net.send(msg(1, 2))
        sched.run_until_idle()
        assert len(got) == 1
        assert got[0].dst == 2

    def test_latency_charged(self):
        sched, net = make_net()
        times = []
        net.attach(2, lambda m: times.append(sched.now))
        net.attach(1, lambda m: None)
        net.send(msg(1, 2))
        sched.run_until_idle()
        assert times[0] >= LAN_LATENCY

    def test_wan_slower_than_lan(self):
        _, lan = make_net(Topology.lan())
        _, wan = make_net(Topology.wan())
        size = 128
        import random
        rng = random.Random(0)
        lan_d = lan.topology.link(0, 1).delivery_delay(size, rng)
        wan_d = wan.topology.link(0, 1).delivery_delay(size, rng)
        assert wan_d > lan_d * 10

    def test_unattached_destination_drops(self):
        sched, net = make_net()
        net.attach(1, lambda m: None)
        net.send(msg(1, 99))
        sched.run_until_idle()
        assert net.stats.messages_dropped == 1

    def test_bigger_messages_take_longer(self):
        sched, net = make_net()
        order = []
        net.attach(2, lambda m: order.append(m.payload.get("tag")))
        net.attach(1, lambda m: None)
        net.send(msg(1, 2, {"tag": "big", "data": b"x" * 100_000}))
        net.send(msg(1, 2, {"tag": "small"}))
        sched.run_until_idle()
        assert order == ["small", "big"]


class TestFaults:
    def test_crash_drops_inflight(self):
        sched, net = make_net()
        got = []
        net.attach(2, lambda m: got.append(m))
        net.attach(1, lambda m: None)
        net.send(msg(1, 2))
        net.crash(2)
        sched.run_until_idle()
        assert got == []
        assert net.stats.messages_dropped == 1

    def test_recover_restores_delivery(self):
        sched, net = make_net()
        got = []
        net.attach(2, lambda m: got.append(m))
        net.attach(1, lambda m: None)
        net.crash(2)
        net.recover(2)
        net.send(msg(1, 2))
        sched.run_until_idle()
        assert len(got) == 1

    def test_partition_blocks_both_ways(self):
        sched, net = make_net()
        got = []
        for node in (1, 2, 3):
            net.attach(node, lambda m: got.append((m.src, m.dst)))
        net.partition({1}, {2})
        net.send(msg(1, 2))
        net.send(msg(2, 1))
        net.send(msg(1, 3))
        sched.run_until_idle()
        assert got == [(1, 3)]

    def test_heal_partitions(self):
        sched, net = make_net()
        got = []
        net.attach(1, lambda m: None)
        net.attach(2, lambda m: got.append(m))
        net.partition({1}, {2})
        net.heal_partitions()
        net.send(msg(1, 2))
        sched.run_until_idle()
        assert len(got) == 1

    def test_lossy_link_drops_deterministically(self):
        sched, net = make_net(Topology.lan(loss=0.5), seed=42)
        got = []
        net.attach(2, lambda m: got.append(m))
        net.attach(1, lambda m: None)
        for _ in range(100):
            net.send(msg(1, 2))
        sched.run_until_idle()
        assert 0 < len(got) < 100
        # Determinism: the same seed loses the same messages.
        sched2, net2 = make_net(Topology.lan(loss=0.5), seed=42)
        got2 = []
        net2.attach(2, lambda m: got2.append(m))
        net2.attach(1, lambda m: None)
        for _ in range(100):
            net2.send(msg(1, 2))
        sched2.run_until_idle()
        assert len(got2) == len(got)


class TestPerLinkStreams:
    """Each directed link draws from its own seeded RNG stream."""

    def _losses_on_3_to_4(self, extra_cross_traffic):
        sched, net = make_net(Topology.lan(loss=0.5), seed=42)
        got = []
        for node in (1, 2, 3, 4):
            net.attach(node, lambda m: None)
        net.attach(4, lambda m: got.append(m.payload["n"]))
        for n in range(50):
            if extra_cross_traffic:
                net.send(msg(1, 2, {"n": n}))   # noise on another link
            net.send(msg(3, 4, {"n": n}))
        sched.run_until_idle()
        return got

    def test_traffic_elsewhere_does_not_perturb_a_link(self):
        # With one shared RNG, interleaving sends on link 1->2 would
        # shift which 3->4 messages hit the loss draw.  Per-link
        # streams keep the 3->4 outcome byte-identical.
        assert self._losses_on_3_to_4(False) == self._losses_on_3_to_4(True)

    def test_opposite_directions_are_distinct_streams(self):
        sched, net = make_net(Topology.lan(loss=0.5), seed=7)
        forward, backward = [], []
        net.attach(1, lambda m: backward.append(m.payload["n"]))
        net.attach(2, lambda m: forward.append(m.payload["n"]))
        for n in range(60):
            net.send(msg(1, 2, {"n": n}))
            net.send(msg(2, 1, {"n": n}))
        sched.run_until_idle()
        assert forward != backward   # independently seeded directions

    def test_delivery_labels_identify_link_and_occurrence(self):
        sched, net = make_net()
        net.attach(1, lambda m: None)
        net.attach(2, lambda m: None)
        labels = []
        original = sched.call_later

        def spy(delay, callback, label=""):
            labels.append(label)
            return original(delay, callback, label=label)

        sched.call_later = spy
        net.send(msg(1, 2))
        net.send(msg(1, 2))
        net.send(msg(2, 1))
        sched.run_until_idle()
        assert labels == [
            "deliver:ping:1->2#0",
            "deliver:ping:1->2#1",
            "deliver:ping:2->1#0",
        ]


class TestJitter:
    def _delivery_times(self, seed):
        sched, net = make_net(Topology.lan(jitter=0.01), seed=seed)
        times = []
        net.attach(1, lambda m: None)
        net.attach(2, lambda m: times.append(sched.now))
        for _ in range(10):
            net.send(msg(1, 2))
        sched.run_until_idle()
        return times

    def test_jitter_spreads_deliveries(self):
        times = self._delivery_times(seed=1)
        assert len(set(times)) > 1   # not all identical

    def test_jitter_is_seed_deterministic(self):
        assert self._delivery_times(seed=5) == self._delivery_times(seed=5)
        assert self._delivery_times(seed=5) != self._delivery_times(seed=6)


class TestTopology:
    def test_clustered_intra_vs_inter(self):
        topo = Topology.clustered({0: 0, 1: 0, 2: 1})
        assert topo.link(0, 1).base_latency == LAN_LATENCY
        assert topo.link(0, 2).base_latency == WAN_LATENCY
        assert topo.cluster_of(2) == 1

    def test_link_override(self):
        topo = Topology.lan()
        slow = LinkSpec(base_latency=1.0)
        topo.set_link(1, 2, slow)
        assert topo.link(1, 2).base_latency == 1.0
        assert topo.link(2, 1).base_latency == 1.0
        assert topo.link(1, 3).base_latency == LAN_LATENCY


class TestStats:
    def test_counters_accumulate(self):
        sched, net = make_net()
        net.attach(1, lambda m: None)
        net.attach(2, lambda m: None)
        net.send(msg(1, 2))
        net.send(msg(2, 1))
        sched.run_until_idle()
        assert net.stats.messages_sent == 2
        assert net.stats.messages_delivered == 2
        assert net.stats.count(MessageType.PING) == 2
        assert net.stats.bytes_sent > 0

    def test_snapshot_delta(self):
        sched, net = make_net()
        net.attach(1, lambda m: None)
        net.attach(2, lambda m: None)
        net.send(msg(1, 2))
        sched.run_until_idle()
        before = net.stats.snapshot()
        net.send(msg(1, 2))
        net.send(msg(1, 2))
        sched.run_until_idle()
        delta = net.stats.delta_since(before)
        assert delta.messages_sent == 2
        assert delta.by_type["ping"] == 2

    def test_tap_sees_all_sends(self):
        sched, net = make_net()
        seen = []
        net.tap(lambda m: seen.append(m))
        net.attach(1, lambda m: None)
        net.send(msg(1, 99))   # dropped, but still tapped
        sched.run_until_idle()
        assert len(seen) == 1

    def test_node_ids_sorted(self):
        _, net = make_net()
        for node in (5, 1, 3):
            net.attach(node, lambda m: None)
        assert net.node_ids() == [1, 3, 5]
        net.detach(3)
        assert net.node_ids() == [1, 5]
