"""Tests for the RPC layer: matching, retries, timeouts, NAKs."""

import pytest

from repro.net.clock import EventScheduler
from repro.net.message import Message, MessageType
from repro.net.rpc import RemoteError, RetryPolicy, RpcEndpoint, RpcTimeout
from repro.net.sim import SimNetwork, Topology


def make_pair(topology=None, seed=0):
    sched = EventScheduler()
    net = SimNetwork(sched, topology, seed=seed)
    a = RpcEndpoint(1, net, sched)
    b = RpcEndpoint(2, net, sched)
    return sched, net, a, b


class TestRequestReply:
    def test_roundtrip(self):
        sched, _net, a, b = make_pair()
        b.on(MessageType.PING, lambda m: b.reply(m, MessageType.PONG,
                                                 {"echo": m.payload["x"]}))
        future = a.request(2, MessageType.PING, {"x": 7})
        sched.run_until_idle()
        assert future.result().payload["echo"] == 7

    def test_error_reply_becomes_remote_error(self):
        sched, _net, a, b = make_pair()
        b.on(MessageType.PING, lambda m: b.reply_error(m, "lock_denied", "no"))
        future = a.request(2, MessageType.PING)
        sched.run_until_idle()
        with pytest.raises(RemoteError) as info:
            future.result()
        assert info.value.code == "lock_denied"

    def test_unhandled_type_naks(self):
        sched, _net, a, _b = make_pair()
        future = a.request(2, MessageType.PAGE_FETCH, {})
        sched.run_until_idle()
        with pytest.raises(RemoteError) as info:
            future.result()
        assert info.value.code == "unhandled"

    def test_concurrent_requests_match_correctly(self):
        sched, _net, a, b = make_pair()
        b.on(MessageType.PING,
             lambda m: b.reply(m, MessageType.PONG, {"v": m.payload["v"]}))
        futures = [a.request(2, MessageType.PING, {"v": i}) for i in range(10)]
        sched.run_until_idle()
        assert [f.result().payload["v"] for f in futures] == list(range(10))


class TestTimeoutsAndRetries:
    def test_timeout_after_retries(self):
        sched, net, a, _b = make_pair()
        net.crash(2)
        policy = RetryPolicy(timeout=0.1, retries=2, backoff=2.0)
        future = a.request(2, MessageType.PING, policy=policy)
        sched.run_until_idle()
        with pytest.raises(RpcTimeout) as info:
            future.result()
        assert info.value.attempts == 3
        # messages: 1 original + 2 retransmissions, all dropped
        assert net.stats.messages_dropped == 3

    def test_retransmission_recovers_from_loss(self):
        sched, _net, a, b = make_pair(Topology.lan(loss=0.4), seed=7)
        b.on(MessageType.PING, lambda m: b.reply(m, MessageType.PONG, {}))
        policy = RetryPolicy(timeout=0.05, retries=10, backoff=1.0)
        futures = [a.request(2, MessageType.PING, policy=policy)
                   for _ in range(20)]
        sched.run_until_idle()
        assert all(f.result() is not None for f in futures)

    def test_late_duplicate_reply_ignored(self):
        sched, _net, a, b = make_pair()
        replies = []

        def handler(m):
            # Reply twice: the second must be dropped by the requester.
            b.reply(m, MessageType.PONG, {"n": 1})
            b.reply(m, MessageType.PONG, {"n": 2})

        b.on(MessageType.PING, handler)
        future = a.request(2, MessageType.PING)
        sched.run_until_idle()
        assert future.result().payload["n"] == 1

    def test_backoff_schedule(self):
        policy = RetryPolicy(timeout=1.0, retries=3, backoff=2.0)
        assert policy.attempt_timeout(0) == 1.0
        assert policy.attempt_timeout(1) == 2.0
        assert policy.attempt_timeout(2) == 4.0


class TestShutdown:
    def test_shutdown_fails_pending(self):
        sched, net, a, _b = make_pair()
        net.crash(2)
        future = a.request(2, MessageType.PING)
        a.shutdown()
        assert isinstance(future.exception(), RpcTimeout)

    def test_shutdown_detaches(self):
        sched, net, a, b = make_pair()
        a.shutdown()
        b.send(Message(MessageType.PING, src=2, dst=1))
        sched.run_until_idle()
        assert net.stats.messages_dropped == 1
