"""Tests for the MessageRouter interceptor chain.

Duplicate suppression, interceptor ordering, latency accounting, and
error-reply classification — the dispatch behaviour every wire route
inherits, tested directly against hand-crafted messages rather than
through full client operations.
"""

import pytest

from repro.core.router import (
    Interceptor,
    REPLY_CACHE_LIMIT,
    Route,
)
from repro.net.message import Message, MessageType
from repro.net.rpc import RemoteError


class Recorder(Interceptor):
    """Test middleware: logs its position, optionally drops."""

    def __init__(self, router, log, tag, drop=False):
        super().__init__(router)
        self.log = log
        self.tag = tag
        self.drop = drop

    def handle(self, msg, route, proceed):
        self.log.append(self.tag)
        if not self.drop:
            proceed()


class TestDedup:
    def test_duplicate_of_answered_request_resends_cached_reply(
        self, cluster
    ):
        daemon = cluster.daemon(2)
        calls = []

        def handler(msg):
            calls.append(msg)
            daemon.reply_request(msg, MessageType.PONG, {"n": len(calls)})

        daemon.rpc.on(MessageType.PING, daemon.router.dedup(handler))
        replies = []
        cluster.network.attach(1, lambda m: replies.append(m))
        for _ in range(3):
            cluster.network.send(
                Message(MessageType.PING, src=1, dst=2, request_id=99)
            )
            cluster.run(0.1)
        assert len(calls) == 1
        assert len(replies) == 3
        assert all(r.payload == {"n": 1} for r in replies)

    def test_message_without_request_id_is_never_deduplicated(self, cluster):
        daemon = cluster.daemon(2)
        calls = []
        daemon.rpc.on(MessageType.PING, daemon.router.dedup(calls.append))
        for _ in range(3):
            cluster.network.send(Message(MessageType.PING, src=1, dst=2))
        cluster.run(0.1)
        assert len(calls) == 3

    def test_non_dedup_route_runs_handler_every_time(self, cluster):
        daemon = cluster.daemon(2)
        calls = []
        route = Route(msg_type=None, handler=calls.append, dedup=False)
        daemon.rpc.on(MessageType.PING,
                      lambda msg: daemon.router.dispatch(route, msg))
        for _ in range(2):
            cluster.network.send(
                Message(MessageType.PING, src=1, dst=2, request_id=7)
            )
        cluster.run(0.1)
        assert len(calls) == 2

    def test_reply_cache_is_bounded(self, cluster):
        daemon = cluster.daemon(2)

        def handler(msg):
            daemon.reply_request(msg, MessageType.PONG, {})

        daemon.rpc.on(MessageType.PING, daemon.router.dedup(handler))
        for rid in range(REPLY_CACHE_LIMIT + 50):
            cluster.network.send(
                Message(MessageType.PING, src=1, dst=2, request_id=rid)
            )
        cluster.run(1.0)
        assert len(daemon.router.reply_cache) <= REPLY_CACHE_LIMIT


class TestInterceptorOrdering:
    def test_inserted_recorders_run_in_list_order_before_handler(
        self, cluster
    ):
        daemon = cluster.daemon(2)
        log = []
        router = daemon.router
        router.interceptors.insert(0, Recorder(router, log, "first"))
        router.interceptors.append(Recorder(router, log, "last"))
        daemon.rpc.on(
            MessageType.PING,
            router.dedup(lambda msg: log.append("handler")),
        )
        cluster.network.send(
            Message(MessageType.PING, src=1, dst=2, request_id=1)
        )
        cluster.run(0.1)
        assert log == ["first", "last", "handler"]

    def test_dedup_drop_stops_later_stages(self, cluster):
        """A duplicate dropped by the dedup stage must not reach
        interceptors (or the handler) further down the chain."""
        daemon = cluster.daemon(2)
        log = []
        router = daemon.router
        router.interceptors.append(Recorder(router, log, "late"))
        daemon.rpc.on(
            MessageType.PING,
            router.dedup(lambda msg: log.append("handler")),
        )
        for _ in range(2):
            cluster.network.send(
                Message(MessageType.PING, src=1, dst=2, request_id=5)
            )
        cluster.run(0.1)
        assert log == ["late", "handler"]   # second transmission dropped

    def test_dropping_interceptor_suppresses_dispatch(self, cluster):
        daemon = cluster.daemon(2)
        log = []
        router = daemon.router
        router.interceptors.insert(
            0, Recorder(router, log, "gate", drop=True)
        )
        daemon.rpc.on(
            MessageType.PING,
            router.dedup(lambda msg: log.append("handler")),
        )
        cluster.network.send(
            Message(MessageType.PING, src=1, dst=2, request_id=1)
        )
        cluster.run(0.1)
        assert log == ["gate"]


class TestLatencyAccounting:
    def test_reply_records_virtual_clock_latency_under_op_name(
        self, cluster
    ):
        daemon = cluster.daemon(2)

        def handler(msg):
            def task():
                yield daemon.sleep(0.25)
                daemon.reply_request(msg, MessageType.PONG, {})

            daemon.spawn(task(), label="slow-pong")

        daemon.rpc.on(MessageType.PING, daemon.router.dedup(handler))
        cluster.network.send(
            Message(MessageType.PING, src=1, dst=2, request_id=11)
        )
        cluster.run(1.0)
        lat = daemon.stats.op_latency[MessageType.PING.value]
        assert lat.count == 1
        assert lat.mean == pytest.approx(0.25)
        assert lat.max == pytest.approx(0.25)
        # The reply stopped this request's timer (the failure
        # detector's own heartbeat pings may still be in flight).
        assert (1, 11) not in daemon.router.inflight

    def test_error_reply_also_stops_the_timer(self, cluster):
        daemon = cluster.daemon(2)

        def handler(msg):
            daemon.reply_error(msg, "lock_denied", "no")

        daemon.rpc.on(MessageType.PING, daemon.router.dedup(handler))
        cluster.network.send(
            Message(MessageType.PING, src=1, dst=2, request_id=12)
        )
        cluster.run(0.1)
        assert daemon.stats.op_latency[MessageType.PING.value].count == 1
        assert (1, 12) not in daemon.router.inflight

    def test_unanswered_request_leaves_no_latency_record(self, cluster):
        daemon = cluster.daemon(2)
        daemon.rpc.on(MessageType.PING,
                      daemon.router.dedup(lambda msg: None))
        cluster.network.send(
            Message(MessageType.PING, src=1, dst=2, request_id=13)
        )
        cluster.run(0.1)
        assert MessageType.PING.value not in daemon.stats.op_latency
        assert (1, 13) in daemon.router.inflight


class TestErrorReplyClassification:
    def test_cm_route_for_unknown_region_naks_region_not_found(
        self, cluster
    ):
        daemon1 = cluster.daemon(1)
        future = daemon1.rpc.request(
            2, MessageType.PAGE_FETCH, {"rid": 0xDEAD000}
        )
        with pytest.raises(RemoteError) as info:
            cluster.driver.wait(future)
        assert info.value.code == "region_not_found"

    def test_khazana_error_in_handler_task_keeps_its_code(self, cluster):
        from repro.core.errors import LockDenied

        daemon2 = cluster.daemon(2)

        def handler(msg):
            def task():
                raise LockDenied("router test says no")
                yield  # pragma: no cover

            daemon2.spawn_handler(msg, task(), label="nak")

        daemon2.rpc.on(MessageType.PING, daemon2.router.dedup(handler))
        future = cluster.daemon(1).rpc.request(2, MessageType.PING, {})
        with pytest.raises(RemoteError) as info:
            cluster.driver.wait(future)
        assert info.value.code == "lock_denied"

    def test_foreign_exception_becomes_generic_khazana_error(self, cluster):
        daemon2 = cluster.daemon(2)

        def handler(msg):
            def task():
                raise ValueError("router test bug")
                yield  # pragma: no cover

            daemon2.spawn_handler(msg, task(), label="crash")

        daemon2.rpc.on(MessageType.PING, daemon2.router.dedup(handler))
        future = cluster.daemon(1).rpc.request(2, MessageType.PING, {})
        with pytest.raises(RemoteError) as info:
            cluster.driver.wait(future)
        assert info.value.code == "khazana_error"
