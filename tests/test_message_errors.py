"""Unit tests for the message envelope and the error taxonomy."""

import pytest

from repro.core import errors
from repro.net.message import ENVELOPE_BYTES, Message, MessageType, REPLY_TYPES


class TestMessage:
    def test_unique_ids(self):
        a = Message(MessageType.PING, src=1, dst=2)
        b = Message(MessageType.PING, src=1, dst=2)
        assert a.msg_id != b.msg_id

    def test_reply_addresses_sender(self):
        request = Message(MessageType.LOCK_REQUEST, src=1, dst=2,
                          request_id=77)
        reply = request.reply(MessageType.LOCK_REPLY, {"x": 1})
        assert reply.src == 2 and reply.dst == 1
        assert reply.reply_to == 77
        assert reply.is_reply

    def test_error_reply_carries_code(self):
        request = Message(MessageType.PAGE_FETCH, src=1, dst=2,
                          request_id=5)
        nak = request.error_reply("lock_denied", "busy")
        assert nak.msg_type is MessageType.ERROR
        assert nak.payload == {"code": "lock_denied", "detail": "busy"}

    def test_size_accounts_for_bulk_data(self):
        small = Message(MessageType.PAGE_DATA, src=1, dst=2,
                        payload={"data": b""})
        big = Message(MessageType.PAGE_DATA, src=1, dst=2,
                      payload={"data": b"x" * 4096})
        # PAGE_DATA is a codec hot type once a simulation is up: the
        # 4 KiB of page data shows up byte-for-byte, plus at most a
        # few bytes of length-prefix growth.
        grown = big.size_bytes() - small.size_bytes()
        assert 4096 <= grown <= 4096 + 8
        assert small.size_bytes() > 0

    def test_size_handles_varied_payloads(self):
        msg = Message(
            MessageType.CM_HINT_REPLY, src=1, dst=2,
            payload={
                "nodes": [1, 2, 3],
                "descriptor": {"a": 1, "b": 2},
                "via": "local",
                "flag": True,
            },
        )
        assert msg.size_bytes() > ENVELOPE_BYTES

    def test_request_types_are_not_reply_types(self):
        assert MessageType.LOCK_REQUEST not in REPLY_TYPES
        assert MessageType.LOCK_REPLY in REPLY_TYPES
        assert MessageType.ERROR in REPLY_TYPES

    def test_repr_mentions_route(self):
        msg = Message(MessageType.PING, src=3, dst=9, request_id=4)
        assert "3->9" in repr(msg)


class TestErrorTaxonomy:
    def test_every_error_has_unique_code(self):
        codes = [cls.code for cls in errors.ERROR_CODES.values()]
        assert len(codes) == len(set(codes))

    def test_roundtrip_through_wire_code(self):
        original = errors.LockDenied("contention")
        revived = errors.error_from_code(original.code, "contention")
        assert isinstance(revived, errors.LockDenied)
        assert "contention" in str(revived)

    def test_unknown_code_degrades_to_base(self):
        revived = errors.error_from_code("martian", "detail")
        assert type(revived) is errors.KhazanaError

    def test_all_registered_are_khazana_errors(self):
        for cls in errors.ERROR_CODES.values():
            assert issubclass(cls, errors.KhazanaError)

    @pytest.mark.parametrize("cls", [
        errors.RegionNotFound,
        errors.NotAllocated,
        errors.AccessDenied,
        errors.KhazanaTimeout,
        errors.StorageExhausted,
    ])
    def test_detail_preserved(self, cls):
        err = cls("specific detail")
        assert err.detail == "specific detail"
        assert "specific detail" in str(err)
