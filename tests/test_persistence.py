"""Tests for persistent storage and daemon restart.

Paper Section 1: Khazana uses "local storage, both volatile (RAM) and
persistent (disk), on its constituent nodes".  A daemon configured
with a spill directory journals its homed metadata and keeps page
contents in a file-backed store, so a crash + restart preserves the
regions it homes.
"""

import pytest

from repro.api import create_cluster
from repro.core.attributes import RegionAttributes
from repro.core.daemon import DaemonConfig
from repro.storage.persistence import MetadataJournal


@pytest.fixture
def durable_cluster(tmp_path):
    config = DaemonConfig(spill_dir=str(tmp_path / "spill"))
    return create_cluster(num_nodes=4, config=config)


class TestJournal:
    def test_regions_roundtrip(self, tmp_path, durable_cluster):
        kz = durable_cluster.client(node=1)
        desc = kz.reserve(4096)
        daemon = durable_cluster.daemon(1)
        daemon.checkpoint()
        journal = MetadataJournal(daemon.journal.directory)
        loaded = journal.load_regions()
        assert any(d.rid == desc.rid for d in loaded)

    def test_page_entries_conservative_recovery(self, durable_cluster):
        kz = durable_cluster.client(node=1)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        kz.write_at(desc.rid, b"x")
        durable_cluster.client(node=3).read_at(desc.rid, 1)  # adds sharer
        daemon = durable_cluster.daemon(1)
        daemon.checkpoint()
        entries = daemon.journal.load_page_entries(node_id=1)
        entry = next(e for e in entries if e.address == desc.rid)
        # Conservative: restarted home owns the page, copyset is self.
        assert entry.owner == 1
        assert entry.sharers == {1}
        assert entry.allocated


class TestRestart:
    def test_homed_region_survives_restart(self, durable_cluster):
        cluster = durable_cluster
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        kz.write_at(desc.rid, b"durable-data")
        cluster.run(2.0)   # housekeeping checkpoints + disk settle

        cluster.crash(1)
        cluster.run(8.0)
        fresh = cluster.restart_node(1)
        cluster.run(2.0)

        assert desc.rid in fresh.homed_regions
        # The restarted node serves its region again — to itself...
        assert cluster.client(node=1).read_at(desc.rid, 12) == b"durable-data"
        # ...and to remote readers.
        assert cluster.client(node=3).read_at(desc.rid, 12) == b"durable-data"

    def test_restarted_bootstrap_keeps_address_map(self, durable_cluster):
        cluster = durable_cluster
        kz2 = cluster.client(node=2)
        desc = kz2.reserve(4096)
        kz2.allocate(desc.rid)
        kz2.write_at(desc.rid, b"mapped")
        cluster.run(2.0)

        cluster.crash(0)   # bootstrap node: address-map home
        cluster.run(8.0)
        cluster.restart_node(0)
        cluster.run(2.0)

        # New reservations still work (the map survived on disk) and
        # old ones still resolve through it.
        desc2 = kz2.reserve(4096)
        assert not desc2.range.overlaps(desc.range)
        probe = cluster.client(node=3)
        assert probe.read_at(desc.rid, 6) == b"mapped"

    def test_restart_without_spill_loses_state(self, tmp_path):
        cluster = create_cluster(num_nodes=4)   # volatile daemons
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        kz.write_at(desc.rid, b"gone")
        cluster.run(2.0)
        cluster.crash(1)
        cluster.run(8.0)
        fresh = cluster.restart_node(1)
        cluster.run(2.0)
        assert desc.rid not in fresh.homed_regions

    def test_writes_after_restart_are_seen_remotely(self, durable_cluster):
        cluster = durable_cluster
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        kz.write_at(desc.rid, b"gen-0")
        cluster.run(2.0)
        cluster.crash(1)
        cluster.run(8.0)
        cluster.restart_node(1)
        cluster.run(2.0)
        cluster.client(node=1).write_at(desc.rid, b"gen-1")
        assert cluster.client(node=2).read_at(desc.rid, 5) == b"gen-1"

    def test_stale_remote_copy_refetches_after_restart(self, durable_cluster):
        """A reader that cached the page before the crash re-fetches
        after the restarted home invalidates via a fresh write."""
        cluster = durable_cluster
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(4096)
        kz1.allocate(desc.rid)
        kz1.write_at(desc.rid, b"old")
        kz3 = cluster.client(node=3)
        assert kz3.read_at(desc.rid, 3) == b"old"
        cluster.run(2.0)
        cluster.crash(1)
        cluster.run(8.0)
        cluster.restart_node(1)
        cluster.run(2.0)
        cluster.client(node=1).write_at(desc.rid, b"new")
        # Node 3's pre-crash copy is not in the restarted home's
        # copyset, so it received no invalidation; its next *cold*
        # acquire must still deliver the fresh data.
        cluster.daemon(3).drop_local_page(desc.rid)
        cm3 = cluster.daemon(3).consistency_manager("crew")
        cm3.page_state.pop(desc.rid, None)
        assert kz3.read_at(desc.rid, 3) == b"new"
