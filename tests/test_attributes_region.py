"""Tests for region attributes and descriptors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addressing import AddressRange
from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.errors import BadPageSize
from repro.core.region import RegionDescriptor
from repro.core.security import AccessControlList, Right


class TestAttributes:
    def test_defaults(self):
        attrs = RegionAttributes()
        assert attrs.consistency_level is ConsistencyLevel.STRICT
        assert attrs.protocol == "crew"
        assert attrs.min_replicas == 1
        assert attrs.page_size == 4096

    def test_level_to_protocol_mapping(self):
        assert RegionAttributes(
            consistency_level=ConsistencyLevel.RELEASE
        ).protocol == "release"
        assert RegionAttributes(
            consistency_level=ConsistencyLevel.EVENTUAL
        ).protocol == "eventual"

    def test_explicit_protocol_overrides_level(self):
        attrs = RegionAttributes(
            consistency_level=ConsistencyLevel.STRICT,
            consistency_protocol="eventual",
        )
        assert attrs.protocol == "eventual"

    def test_bad_page_size_rejected(self):
        with pytest.raises(BadPageSize):
            RegionAttributes(page_size=5000)

    def test_bad_replica_count_rejected(self):
        with pytest.raises(ValueError):
            RegionAttributes(min_replicas=0)

    def test_wire_roundtrip(self):
        attrs = RegionAttributes(
            consistency_level=ConsistencyLevel.RELEASE,
            min_replicas=3,
            page_size=16384,
            acl=AccessControlList.build("alice", {"bob": Right.READ}),
        )
        clone = RegionAttributes.from_wire(attrs.to_wire())
        assert clone == attrs

    @given(
        st.sampled_from(list(ConsistencyLevel)),
        st.integers(min_value=1, max_value=8),
        st.sampled_from([4096, 8192, 65536]),
    )
    @settings(max_examples=50)
    def test_wire_roundtrip_property(self, level, replicas, page_size):
        attrs = RegionAttributes(
            consistency_level=level,
            min_replicas=replicas,
            page_size=page_size,
        )
        assert RegionAttributes.from_wire(attrs.to_wire()) == attrs


def desc(start=0x10000, length=0x4000, page_size=4096, homes=(1,)):
    return RegionDescriptor(
        range=AddressRange(start, length),
        attrs=RegionAttributes(page_size=page_size),
        home_nodes=homes,
    )


class TestDescriptor:
    def test_requires_home(self):
        with pytest.raises(ValueError):
            desc(homes=())

    def test_requires_page_alignment(self):
        with pytest.raises(ValueError):
            desc(start=100)
        with pytest.raises(ValueError):
            desc(length=100)

    def test_rid_and_primary(self):
        d = desc(homes=(3, 5))
        assert d.rid == 0x10000
        assert d.primary_home == 3

    def test_pages(self):
        d = desc(length=3 * 4096)
        assert d.pages() == [0x10000, 0x11000, 0x12000]

    def test_page_base(self):
        d = desc()
        assert d.page_base(0x10000) == 0x10000
        assert d.page_base(0x10FFF) == 0x10000
        assert d.page_base(0x11000) == 0x11000
        with pytest.raises(ValueError):
            d.page_base(0x20000)

    def test_pages_covering_clips(self):
        d = desc(length=4 * 4096)
        covered = d.pages_covering(AddressRange(0x10800, 0x1000))
        assert covered == [0x10000, 0x11000]
        assert d.pages_covering(AddressRange(0x90000, 16)) == []

    def test_versions_increase_on_update(self):
        d = desc()
        updated = d.with_allocated(True)
        assert updated.version > d.version
        assert updated.allocated
        rehomed = updated.with_homes((2, 4))
        assert rehomed.version > updated.version
        assert rehomed.home_nodes == (2, 4)

    def test_wire_roundtrip(self):
        d = desc(homes=(2, 7)).with_allocated(True)
        clone = RegionDescriptor.from_wire(d.to_wire())
        assert clone.range == d.range
        assert clone.home_nodes == d.home_nodes
        assert clone.allocated == d.allocated
        assert clone.version == d.version
        assert clone.attrs == d.attrs
