"""Tests for the benchmark support package."""

import pytest

from repro.bench.metrics import LatencyRecorder, Table, speedup
from repro.bench.workloads import (
    AccessPattern,
    WorkloadSpec,
    ZipfGenerator,
    make_regions,
    run_access_workload,
)


class TestZipf:
    def test_deterministic_for_seed(self):
        a = ZipfGenerator(100, seed=5).sample(50)
        b = ZipfGenerator(100, seed=5).sample(50)
        assert a == b

    def test_different_seeds_differ(self):
        assert ZipfGenerator(100, seed=1).sample(50) != ZipfGenerator(
            100, seed=2
        ).sample(50)

    def test_skew_concentrates_mass(self):
        samples = ZipfGenerator(100, skew=1.2, seed=0).sample(2000)
        head = sum(1 for s in samples if s < 10)
        assert head > 1000   # top 10% of items get most accesses

    def test_zero_skew_roughly_uniform(self):
        samples = ZipfGenerator(10, skew=0.0, seed=0).sample(5000)
        counts = [samples.count(i) for i in range(10)]
        assert min(counts) > 300

    def test_indices_in_range(self):
        gen = ZipfGenerator(7, seed=3)
        assert all(0 <= s < 7 for s in gen.sample(500))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)


class TestLatencyRecorder:
    def test_statistics(self):
        rec = LatencyRecorder()
        for v in [0.01, 0.02, 0.03, 0.04]:
            rec.record(v)
        assert rec.count() == 4
        assert rec.mean() == pytest.approx(0.025)
        assert rec.percentile(50) == 0.02
        assert rec.percentile(99) == 0.04

    def test_empty_safe(self):
        rec = LatencyRecorder()
        assert rec.mean() == 0.0
        assert rec.percentile(99) == 0.0


class TestTable:
    def test_render_and_cell(self):
        table = Table("T", ["name", "value"])
        table.add("alpha", 1.5)
        table.add("beta", 12345.0)
        text = table.render()
        assert "alpha" in text and "1.50" in text and "12345" in text
        assert table.cell(0, "value") == "1.50"

    def test_wrong_arity_rejected(self):
        table = Table("T", ["a"])
        with pytest.raises(ValueError):
            table.add(1, 2)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) is None


class TestWorkloadRunner:
    def test_counts_and_latencies(self, cluster):
        kz = cluster.client(node=1)
        regions = make_regions(kz, 4)
        spec = WorkloadSpec(operations=40, write_fraction=0.25, seed=1)
        result = run_access_workload(cluster, kz, regions, spec)
        assert result.operations == 40
        assert result.errors == 0
        assert result.writes > 0 and result.reads > 0
        assert result.latency.count() == 40

    def test_sequential_pattern_touches_all_regions(self, cluster):
        kz = cluster.client(node=1)
        regions = make_regions(kz, 5)
        spec = WorkloadSpec(
            operations=10, write_fraction=1.0,
            pattern=AccessPattern.SEQUENTIAL, seed=2,
        )
        result = run_access_workload(cluster, kz, regions, spec)
        assert result.writes == 10
        for region in regions:
            assert cluster.daemon(1).storage.contains(region.rid)
