"""Tests for the structural guards (repro.analysis.structure)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.structure import (
    MAX_MODULE_LINES,
    build_import_graph,
    check_module_sizes,
    check_tree,
    find_cycle,
    main,
)

REPRO_ROOT = Path(__file__).parent.parent / "src" / "repro"


class TestModuleSizes:
    def test_flags_oversized_module(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "huge.py").write_text(
            "\n".join(f"x{i} = {i}" for i in range(MAX_MODULE_LINES + 1))
        )
        (pkg / "small.py").write_text("x = 1\n")
        problems = check_module_sizes(pkg)
        assert len(problems) == 1
        assert "huge.py" in problems[0]
        assert str(MAX_MODULE_LINES) in problems[0]


class TestImportCycles:
    def test_finds_a_cycle(self):
        graph = {
            "repro.core.a": {"repro.net.b"},
            "repro.net.b": {"repro.consistency.c"},
            "repro.consistency.c": {"repro.core.a"},
        }
        cycle = find_cycle(graph)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == set(graph)

    def test_acyclic_graph_passes(self):
        graph = {
            "repro.core.a": {"repro.net.b"},
            "repro.net.b": set(),
        }
        assert find_cycle(graph) is None

    def test_detects_cycle_in_real_files(self, tmp_path):
        root = tmp_path / "repro"
        core = root / "core"
        net = root / "net"
        core.mkdir(parents=True)
        net.mkdir()
        for pkg in (root, core, net):
            (pkg / "__init__.py").write_text("")
        (core / "a.py").write_text("from repro.net.b import thing\n")
        (net / "b.py").write_text(
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.core.a import other\n"
        )
        # TYPE_CHECKING import does not close the cycle...
        assert check_tree(root) == []
        # ...an unconditional one does.
        (net / "b.py").write_text("from repro.core.a import other\n")
        problems = check_tree(root)
        assert len(problems) == 1
        assert "import cycle" in problems[0]
        assert "repro.core.a" in problems[0]

    def test_real_tree_has_edges_and_no_cycle(self):
        graph = build_import_graph(REPRO_ROOT)
        # The guard is not vacuous: the layered packages really do
        # import each other (downward).
        assert any(edges for edges in graph.values())
        assert find_cycle(graph) is None


class TestTree:
    def test_shipped_tree_is_clean(self):
        # The CI gate.
        assert main([str(REPRO_ROOT)]) == 0
