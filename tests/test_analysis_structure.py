"""Tests for the structural guards (repro.analysis.structure)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.structure import (
    CONSISTENCY_MODULE_LINES,
    MAX_MODULE_LINES,
    build_import_graph,
    check_module_sizes,
    check_tree,
    find_cycle,
    line_ceiling,
    main,
)

REPRO_ROOT = Path(__file__).parent.parent / "src" / "repro"


class TestModuleSizes:
    def test_flags_oversized_module(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "huge.py").write_text(
            "\n".join(f"x{i} = {i}" for i in range(MAX_MODULE_LINES + 1))
        )
        (pkg / "small.py").write_text("x = 1\n")
        problems = check_module_sizes(pkg)
        assert len(problems) == 1
        assert "huge.py" in problems[0]
        assert str(MAX_MODULE_LINES) in problems[0]

    def test_consistency_layer_has_tighter_ceiling(self, tmp_path):
        pkg = tmp_path / "repro" / "consistency"
        pkg.mkdir(parents=True)
        body = "\n".join(
            f"x{i} = {i}" for i in range(CONSISTENCY_MODULE_LINES + 1)
        )
        (pkg / "bloated.py").write_text(body)
        problems = check_module_sizes(tmp_path)
        assert len(problems) == 1
        assert str(CONSISTENCY_MODULE_LINES) in problems[0]

    def test_ceiling_selection(self):
        assert (line_ceiling(Path("src/repro/consistency/crew.py"))
                == CONSISTENCY_MODULE_LINES)
        assert (line_ceiling(Path("src/repro/consistency/engine/wire.py"))
                == CONSISTENCY_MODULE_LINES)
        assert line_ceiling(Path("src/repro/core/kernel.py")) == (
            MAX_MODULE_LINES
        )


class TestImportCycles:
    def test_finds_a_cycle(self):
        graph = {
            "repro.core.a": {"repro.net.b"},
            "repro.net.b": {"repro.consistency.c"},
            "repro.consistency.c": {"repro.core.a"},
        }
        cycle = find_cycle(graph)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == set(graph)

    def test_acyclic_graph_passes(self):
        graph = {
            "repro.core.a": {"repro.net.b"},
            "repro.net.b": set(),
        }
        assert find_cycle(graph) is None

    def test_detects_cycle_in_real_files(self, tmp_path):
        root = tmp_path / "repro"
        core = root / "core"
        net = root / "net"
        core.mkdir(parents=True)
        net.mkdir()
        for pkg in (root, core, net):
            (pkg / "__init__.py").write_text("")
        (core / "a.py").write_text("from repro.net.b import thing\n")
        (net / "b.py").write_text(
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.core.a import other\n"
        )
        # TYPE_CHECKING import does not close the cycle...
        assert check_tree(root) == []
        # ...an unconditional one does.
        (net / "b.py").write_text("from repro.core.a import other\n")
        problems = check_tree(root)
        assert len(problems) == 1
        assert "import cycle" in problems[0]
        assert "repro.core.a" in problems[0]

    def test_real_tree_has_edges_and_no_cycle(self):
        graph = build_import_graph(REPRO_ROOT)
        # The guard is not vacuous: the layered packages really do
        # import each other (downward).
        assert any(edges for edges in graph.values())
        assert find_cycle(graph) is None

    def test_engine_subpackage_is_in_the_cycle_check(self):
        graph = build_import_graph(REPRO_ROOT)
        engine_modules = [
            module for module in graph
            if module.startswith("repro.consistency.engine")
        ]
        # The engine rides under repro.consistency in LAYERED_PACKAGES;
        # its modules must appear in the graph with their policy<->
        # mechanism edges tracked.
        assert "repro.consistency.engine.wire" in engine_modules
        assert any(
            dep.startswith("repro.consistency.engine")
            for module in ("repro.consistency.crew",
                           "repro.consistency.release")
            for dep in graph.get(module, ())
        )


class TestTree:
    def test_shipped_tree_is_clean(self):
        # The CI gate.
        assert main([str(REPRO_ROOT)]) == 0
