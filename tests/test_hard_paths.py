"""Integration tests for the hard paths: dirty eviction under memory
pressure, concurrent address-map traffic, and distributed deadlocks."""

import pytest

from repro.api import create_cluster
from repro.core.attributes import RegionAttributes
from repro.core.daemon import DaemonConfig
from repro.core.errors import LockDenied
from repro.core.locks import LockMode
from repro.bench.workloads import make_regions


class TestDirtyEviction:
    def test_victimized_dirty_pages_reach_home(self):
        """A cache-poor node writes many remote regions; evicted dirty
        pages must be pushed home, not lost (paper 3.4: disk eviction
        'must invoke the consistency protocol ... push any dirty
        data')."""
        from repro.api import Cluster

        starved = DaemonConfig(
            memory_bytes=4 * 4096,     # tiny RAM
            disk_bytes=8 * 4096,       # tiny disk forces true eviction
        )
        cluster = Cluster(num_nodes=3, node_configs={2: starved})
        owner = cluster.client(node=0)
        # Regions homed at node 0; node 2 writes them all.
        regions = make_regions(owner, 16)
        writer = cluster.client(node=2)
        for i, region in enumerate(regions):
            writer.write_at(region.rid, f"dirty-{i:02d}".encode())
        cluster.run(5.0)   # eviction pushes + write-backs settle
        # Every value survives somewhere authoritative: read each one
        # from a third node.
        reader = cluster.client(node=1)
        for i, region in enumerate(regions):
            assert reader.read_at(region.rid, 8) == f"dirty-{i:02d}".encode()

    def test_eviction_stats_show_activity(self):
        from repro.api import Cluster

        starved = DaemonConfig(memory_bytes=4 * 4096,
                               disk_bytes=8 * 4096)
        cluster = Cluster(num_nodes=3, node_configs={2: starved})
        owner = cluster.client(node=0)
        regions = make_regions(owner, 16)
        writer = cluster.client(node=2)
        for region in regions:
            writer.write_at(region.rid, b"fill")
        stats = cluster.daemon(2).storage.stats
        assert stats.victimized_to_disk > 0
        assert stats.evicted_from_disk > 0


class TestConcurrentMapTraffic:
    def test_parallel_reserves_from_all_nodes(self, big_cluster):
        """Eight nodes reserving concurrently (async API) must carve
        disjoint regions through the release-consistent map."""
        cluster = big_cluster
        futures = []
        for node in cluster.node_ids():
            session = cluster.client(node=node)
            for _ in range(3):
                futures.append(session.reserve_async(4096))
        # Drive the simulation until every reserve completes.
        for future in futures:
            cluster.driver.wait(future)
        descs = [f.result() for f in futures]
        assert len(descs) == 24
        for i, a in enumerate(descs):
            for b in descs[i + 1:]:
                assert not a.range.overlaps(b.range)

    def test_map_consistent_after_concurrent_churn(self, big_cluster):
        from repro.tools import check_cluster

        cluster = big_cluster
        sessions = [cluster.client(node=n) for n in cluster.node_ids()]
        descs = []
        for session in sessions:
            d = session.reserve(4096)
            session.allocate(d.rid)
            descs.append((session, d))
        for session, d in descs[::2]:
            session.unreserve(d.rid)
        cluster.run(10.0)
        report = check_cluster(cluster)
        assert report.ok, report.render()


class TestDistributedDeadlock:
    def test_opposite_order_multi_page_locks_time_out_not_hang(self):
        """Two nodes locking two pages in opposite orders can deadlock
        distributed CREW; Khazana resolves it by lock-wait timeout
        (paper 3.5: operations 'succeed or timeout')."""
        config = DaemonConfig(lock_wait_timeout=5.0)
        cluster = create_cluster(num_nodes=3, config=config)
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(2 * 4096)
        kz1.allocate(desc.rid)
        page_a, page_b = desc.rid, desc.rid + 4096
        kz2 = cluster.client(node=2)

        # Node 1 holds A and wants B; node 2 holds B and wants A.
        ctx1a = kz1.lock(page_a, 4096, LockMode.WRITE)
        ctx2b = kz2.lock(page_b, 4096, LockMode.WRITE)
        want_b = kz1.lock_async(page_b, 4096, LockMode.WRITE)
        want_a = kz2.lock_async(page_a, 4096, LockMode.WRITE)
        cluster.run(60.0)
        # Both waiters resolved one way or the other — nothing hangs.
        assert want_b.done and want_a.done
        outcomes = [want_b.exception(), want_a.exception()]
        # At least one side eventually failed or succeeded cleanly;
        # any granted context must actually be usable.
        for future, session in ((want_b, kz1), (want_a, kz2)):
            if future.exception() is None:
                session.unlock(future.result())
        kz1.unlock(ctx1a)
        kz2.unlock(ctx2b)
        # The system still functions afterwards.
        kz1.write_at(page_a, b"after")
        assert kz2.read_at(page_a, 5) == b"after"


class TestLockFairness:
    def test_waiters_eventually_granted(self, cluster):
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(4096)
        kz1.allocate(desc.rid)
        ctx = kz1.lock(desc.rid, 4096, LockMode.WRITE)
        waiters = [
            cluster.client(node=n).lock_async(desc.rid, 4096, LockMode.READ)
            for n in (0, 2, 3)
        ]
        cluster.run(2.0)
        # CREW: no reader may be granted while the writer holds the
        # page (this is exactly the conflict the CM must delay on).
        assert not any(w.done for w in waiters)
        kz1.unlock(ctx)
        cluster.run(5.0)
        assert all(w.done and w.exception() is None for w in waiters)
        for n, w in zip((0, 2, 3), waiters):
            cluster.client(node=n).unlock(w.result())
