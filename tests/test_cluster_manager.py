"""Tests for the cluster-manager role (paper Section 3.1)."""

import pytest

from repro.core.addressing import AddressRange
from repro.core.allocator import DEFAULT_CHUNK_SIZE
from repro.net.message import MessageType


class TestSpaceGrants:
    def test_reserve_triggers_chunk_grant(self, cluster):
        kz = cluster.client(node=2)
        kz.reserve(4096)
        pool = cluster.daemon(2).space_pool
        # The daemon got a ~1 GiB chunk and carved one page from it.
        assert pool.total_free() == DEFAULT_CHUNK_SIZE - 4096
        assert cluster.daemon(0).cluster_role.space_requests_served == 1

    def test_second_reserve_uses_pool_without_manager(self, cluster):
        kz = cluster.client(node=2)
        kz.reserve(4096)
        before = cluster.stats.snapshot()
        kz.reserve(4096)
        delta = cluster.stats.delta_since(before)
        assert delta.count(MessageType.SPACE_REQUEST) == 0

    def test_manager_carves_from_own_pool_path(self, cluster):
        kz0 = cluster.client(node=0)   # the manager itself
        desc = kz0.reserve(4096)
        assert desc.home_nodes == (0,)
        assert cluster.daemon(0).space_pool.total_free() > 0

    def test_grants_are_disjoint_across_nodes(self, cluster):
        for node in range(1, 4):
            cluster.client(node=node).reserve(4096)
        pools = [cluster.daemon(n).space_pool.ranges() for n in range(1, 4)]
        flat = [r for ranges in pools for r in ranges]
        for i, a in enumerate(flat):
            for b in flat[i + 1:]:
                assert not a.overlaps(b)

    def test_huge_reserve_gets_oversized_chunk(self, cluster):
        kz = cluster.client(node=1)
        big = 3 * DEFAULT_CHUNK_SIZE
        desc = kz.reserve(big)
        assert desc.range.length == big


class TestHints:
    def test_hint_update_recorded(self, cluster):
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(4096)
        cluster.run(1.0)
        role = cluster.daemon(0).cluster_role
        hint = role.lookup_hint(desc.rid)
        assert hint is not None
        found, nodes = hint
        assert found.rid == desc.rid
        assert 1 in nodes

    def test_hint_query_counts(self, cluster):
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(4096)
        kz1.allocate(desc.rid)
        kz1.write_at(desc.rid, b"x")
        cluster.run(1.0)
        role = cluster.daemon(0).cluster_role
        before_q, before_h = role.hint_queries, role.hint_hits
        cluster.client(node=3).read_at(desc.rid, 1)
        assert role.hint_queries == before_q + 1
        assert role.hint_hits == before_h + 1

    def test_dropped_hint_removed(self, cluster):
        role = cluster.daemon(0).cluster_role
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(4096)
        cluster.run(1.0)
        assert role.lookup_hint(desc.rid) is not None
        role.note_region_dropped(desc.rid, 1)
        assert role.lookup_hint(desc.rid) is None

    def test_forget_node_scrubs_hints(self, cluster):
        role = cluster.daemon(0).cluster_role
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(4096)
        cluster.run(1.0)
        role.forget_node(1)
        assert role.lookup_hint(desc.rid) is None

    def test_newer_descriptor_version_kept(self, cluster):
        role = cluster.daemon(0).cluster_role
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(4096)
        newer = desc.with_allocated(True)
        role.note_region_cached(newer, 2)
        role.note_region_cached(desc, 3)   # stale version arrives late
        found, nodes = role.lookup_hint(desc.rid)
        assert found.version == newer.version
        assert nodes >= {2, 3}


class TestFreeSpaceReports:
    def test_reports_arrive_with_housekeeping(self, cluster):
        kz = cluster.client(node=2)
        kz.reserve(4096)   # gives node 2 a pool worth reporting
        cluster.run(3.0)
        role = cluster.daemon(0).cluster_role
        hints = {h.node_id: h for h in role.free_space_hints()}
        assert 2 in hints
        assert hints[2].total_free == DEFAULT_CHUNK_SIZE - 4096
        assert hints[2].max_contiguous <= DEFAULT_CHUNK_SIZE - 4096
