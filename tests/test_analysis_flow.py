"""Tests for the whole-program flow analyzer (repro.analysis.flow).

Each pass is exercised against a fixture under ``tests/fixtures/flow``
(kept as ``.py.txt`` so linting ``tests/`` does not pick them up);
fixtures contain flagged constructs, the clean spellings, and a
suppressed one, so the tests pin down the rule AND the suppression
syntax.  The tree tests run the real CLI over ``src/`` — once clean
(the CI gate) and once with the seeded descending-acquire mutation
(the negated self-check that proves the lock-order pass can see).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import sources
from repro.analysis.flow import analyze
from repro.analysis.flow.__main__ import main
from repro.analysis.flow.report import render_json
from repro.analysis.sources import SourceFile

FIXTURES = Path(__file__).parent / "fixtures" / "flow"


def _fixture(name: str, fake_path: str) -> SourceFile:
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return SourceFile.parse(fake_path, source)


def _analyze(name: str, fake_path: str):
    return analyze([_fixture(name, fake_path)])


class TestLockOrderLoops:
    def test_descending_and_unproven_sweeps_flag(self):
        findings = _analyze(
            "lock_order.py.txt", "src/repro/consistency/fixture_locks.py"
        )
        assert [f.rule for f in findings] == ["KHZ101"] * 3
        by_var = {f.message.split("'")[1]: f.message for f in findings}
        assert set(by_var) == {"dpage", "upage", "wpage"}
        # reversed(sorted(...)) is a proven-descending deadlock...
        assert "DESCENDING" in by_var["dpage"]
        # ...while a bare parameter sweep is merely unprovable.
        assert "cannot be proven" in by_var["upage"]
        # The token acquire in write_path is interprocedural: the loop
        # body only calls acquire_one, whose WRITE arm takes the token.
        assert "cannot be proven" in by_var["wpage"]

    def test_clean_spellings_do_not_flag(self):
        # Covered by the exact finding list above: take_sorted (sorted
        # iteration), take_proved_by_callers (ascending proven through
        # the pages_of call site), read_path (mode facts kill the
        # token arm), and take_suppressed never appear.
        findings = _analyze(
            "lock_order.py.txt", "src/repro/consistency/fixture_locks.py"
        )
        messages = " ".join(f.message for f in findings)
        for clean_var in ("spage", "cpage", "rpage", "xpage"):
            assert f"'{clean_var}'" not in messages


class TestPipelineWindows:
    def test_write_acquire_inside_window_flags(self):
        findings = _analyze(
            "pipeline.py.txt", "src/repro/consistency/fixture_pipeline.py"
        )
        assert [f.rule for f in findings] == ["KHZ101"]
        assert "'fetch'" in findings[0].message
        assert "pipeline window" in findings[0].message

    def test_read_window_and_suppressed_window_stay_clean(self):
        findings = _analyze(
            "pipeline.py.txt", "src/repro/consistency/fixture_pipeline.py"
        )
        # One finding total: good_window's READ facts prove the token
        # arm dead, waived_window carries a reasoned suppression.
        assert len(findings) == 1


class TestReplyPaths:
    def test_silent_early_return_on_request_route_flags(self):
        findings = _analyze(
            "replies.py.txt", "src/repro/core/fixture_replies.py"
        )
        assert [f.rule for f in findings] == ["KHZ102"]
        assert "handle_ping" in findings[0].message
        assert "MessageType.PING" in findings[0].message
        assert "hangs" in findings[0].message
        # The flagged line is the silent ``return`` itself.
        source = (FIXTURES / "replies.py.txt").read_text(encoding="utf-8")
        flagged = source.splitlines()[findings[0].line - 1]
        assert flagged.strip() == "return"

    def test_discharging_shapes_stay_clean(self):
        # Exactly one finding proves every other handler discharged:
        # nak-then-return (handle_fetch), a non-dedup route
        # (handle_gossip), the request_id-is-None one-way exemption
        # (handle_evict), a spawned closure generator that replies or
        # naks (handle_grant), and a suppressed exit (handle_flush).
        findings = _analyze(
            "replies.py.txt", "src/repro/core/fixture_replies.py"
        )
        assert len(findings) == 1


class TestAwaitDiscipline:
    def test_dropped_and_undriven_shapes_flag(self):
        findings = _analyze(
            "awaits.py.txt", "src/repro/consistency/fixture_awaits.py"
        )
        assert [f.rule for f in findings] == ["KHZ103"] * 3
        messages = [f.message for f in findings]
        assert "neither yielded nor gathered" in messages[0]   # drop_bare
        assert "'fut'" in messages[1]                          # drop_named
        assert "never read again" in messages[1]
        assert "'Client.refresh'" in messages[2]               # undriven
        assert "generator op" in messages[2]

    def test_waiting_spellings_stay_clean(self):
        # waits (yielded), gathers (wrapped), drives (yield from) and
        # the suppressed variant contribute nothing beyond the three.
        findings = _analyze(
            "awaits.py.txt", "src/repro/consistency/fixture_awaits.py"
        )
        assert len(findings) == 3


class TestJsonReport:
    def test_sarif_shape(self):
        findings = _analyze(
            "awaits.py.txt", "src/repro/consistency/fixture_awaits.py"
        )
        document = json.loads(render_json(findings, 1))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == ["KHZ101", "KHZ102", "KHZ103"]
        assert run["properties"]["fileCount"] == 1
        assert len(run["results"]) == len(findings)
        first = run["results"][0]
        assert first["ruleId"] == "KHZ103"
        assert first["level"] == "error"
        assert first["message"]["text"] == findings[0].message
        location = first["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == findings[0].path
        assert location["region"]["startLine"] == findings[0].line


class TestSharedParseCache:
    def test_repeat_collects_hit_the_cache_until_the_file_changes(
            self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n", encoding="utf-8")
        sources.clear_cache()
        sources.collect([str(target)])
        assert sources.stats == {"parses": 1, "hits": 0}
        sources.collect([str(target)])
        assert sources.stats == {"parses": 1, "hits": 1}
        target.write_text("x = 1234\n", encoding="utf-8")
        sources.collect([str(target)])
        assert sources.stats["parses"] == 2


class TestTree:
    def test_shipped_tree_is_clean(self, capsys):
        # The repo's own source must pass the flow gate — CI runs this.
        assert main(["src/"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_seeded_descending_mutation_is_caught(self, capsys):
        # The negated self-check: flip the token-grant loop in an
        # in-memory copy of engine/wire.py to descending order and the
        # lock-order pass must fail the run.
        assert main(["src/", "--mutate", "descending-acquire"]) == 1
        out = capsys.readouterr().out
        assert "KHZ101" in out
        assert "DESCENDING" in out
        assert "wire.py" in out
