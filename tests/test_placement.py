"""Tests for the placement seam (repro/core/placement).

The tiered chain's behaviour is pinned by test_location.py; here the
seam itself is exercised — strategy selection, the shared surface —
plus the hash-ring backend: rendezvous math every node must agree on,
O(1) lookups over the live member set, the membership join/leave
protocol, and live re-homing when the ring changes under traffic.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.api import create_cluster
from repro.core.daemon import DaemonConfig
from repro.core.errors import RegionNotFound
from repro.core.placement import (
    HashRingPlacement,
    TieredPlacement,
    create_placement,
)
from repro.core.placement.membership import FOCUS_SUCCESSORS
from repro.core.placement.ring import (
    BUCKET_BYTES,
    DirectorTable,
    bucket_of,
    director_of,
    mix64,
    rank_members,
    rendezvous_weight,
)


def ring_config(**overrides) -> DaemonConfig:
    return DaemonConfig(placement="ring", **overrides)


@pytest.fixture
def ring_cluster():
    return create_cluster(num_nodes=4, config=ring_config())


def reserve_on(cluster, node, size=4096, payload=b"ring data"):
    kz = cluster.client(node=node)
    desc = kz.reserve(size)
    kz.allocate(desc.rid)
    kz.write_at(desc.rid, payload)
    return desc


# ---------------------------------------------------------------------------
# Rendezvous math: every node must compute the same answers
# ---------------------------------------------------------------------------

class TestRingMath:
    def test_mix64_ignores_pythonhashseed(self):
        """Ring positions come from a fixed mixer, not Python's hash():
        two processes with different PYTHONHASHSEED must agree."""
        src = str(Path(repro.__file__).resolve().parents[1])
        script = ("from repro.core.placement.ring import mix64;"
                  "print(mix64(0xDEADBEEF), mix64(0), mix64(1))")
        seen = set()
        for seed in ("0", "1", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=src)
            seen.add(subprocess.check_output(
                [sys.executable, "-c", script], env=env
            ).strip())
        assert len(seen) == 1

    def test_rank_is_order_independent(self):
        members = [3, 17, 4, 9, 0]
        baseline = rank_members(7, members)
        assert rank_members(7, list(reversed(members))) == baseline
        assert rank_members(7, sorted(members)) == baseline
        assert sorted(baseline) == sorted(members)

    def test_director_is_top_ranked(self):
        members = list(range(12))
        for bucket in range(64):
            assert director_of(bucket, members) == (
                rank_members(bucket, members)[0]
            )

    def test_distinct_members_get_distinct_weights(self):
        weights = {rendezvous_weight(5, m) for m in range(100)}
        assert len(weights) == 100

    def test_bucket_of_is_granular(self):
        assert bucket_of(0) == 0
        assert bucket_of(BUCKET_BYTES - 1) == 0
        assert bucket_of(BUCKET_BYTES) == 1


class TestDirectorTable:
    def test_matches_direct_computation(self):
        members = [2, 5, 11, 19]
        table = DirectorTable(256, members)
        for bucket in range(256):
            assert table.director(bucket) == director_of(bucket, members)

    def test_join_moves_roughly_fair_share(self):
        """Rendezvous property: a join steals ~buckets/(n+1) buckets,
        all of them to the newcomer."""
        table = DirectorTable(4096, range(16))
        moved = table.join(16)
        expected = 4096 / 17
        assert expected * 0.5 <= len(moved) <= expected * 1.6
        assert all(table.director(b) == 16 for b in moved)

    def test_leave_moves_only_departed_buckets(self):
        members = list(range(8))
        table = DirectorTable(1024, members)
        before = {b: table.director(b) for b in range(1024)}
        departed = 3
        moved = table.leave(departed)
        assert set(moved) == {b for b, d in before.items() if d == departed}
        survivors = [m for m in members if m != departed]
        for bucket in range(1024):
            assert table.director(bucket) == director_of(bucket, survivors)

    def test_spread_is_balanced(self):
        table = DirectorTable(4096, range(16))
        spread = table.spread()
        mean = 4096 / 16
        assert all(0.5 * mean <= count <= 1.6 * mean
                   for count in spread.values()), spread

    def test_rejoin_restores_prior_assignment(self):
        table = DirectorTable(512, range(6))
        before = [table.director(b) for b in range(512)]
        table.leave(4)
        table.join(4)
        assert [table.director(b) for b in range(512)] == before


# ---------------------------------------------------------------------------
# The seam: strategy selection and the shared surface
# ---------------------------------------------------------------------------

class TestSeam:
    def test_default_strategy_is_tiered(self, cluster):
        for node in cluster.node_ids():
            daemon = cluster.daemon(node)
            assert isinstance(daemon.placement, TieredPlacement)
            assert daemon.location is daemon.placement
            assert daemon.membership is None

    def test_ring_strategy_selected_by_config(self, ring_cluster):
        for node in ring_cluster.node_ids():
            daemon = ring_cluster.daemon(node)
            assert isinstance(daemon.placement, HashRingPlacement)
            assert daemon.membership is not None

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="placement"):
            create_cluster(num_nodes=2,
                           config=DaemonConfig(placement="bogus"))

    def test_factory_matches_kernel(self, cluster):
        daemon = cluster.daemon(0)
        built = create_placement(daemon)
        assert type(built) is type(daemon.placement)

    def test_manager_node_still_reported(self, cluster):
        assert cluster.daemon(1).cluster_manager_node == 0

    def test_report_names_strategy(self, cluster, ring_cluster):
        assert cluster.daemon(0).placement.report()["strategy"] == "tiered"
        assert ring_cluster.daemon(0).placement.report()["strategy"] == "ring"


# ---------------------------------------------------------------------------
# Ring placement end to end (simulated cluster)
# ---------------------------------------------------------------------------

class TestRingLookup:
    def test_cross_node_read_uses_ring_tier(self, ring_cluster):
        desc = reserve_on(ring_cluster, node=1)
        reader = next(n for n in ring_cluster.node_ids()
                      if n not in desc.home_nodes)
        kz = ring_cluster.client(node=reader)
        assert kz.read_at(desc.rid, 9) == b"ring data"
        tiers = ring_cluster.daemon(reader).stats.lookup_tiers
        assert tiers.get("ring", 0) >= 1
        assert tiers.get("cluster", 0) == 0

    def test_director_is_primary_home(self, ring_cluster):
        desc = reserve_on(ring_cluster, node=2)
        members = ring_cluster.daemon(2).membership.alive_members()
        director = director_of(bucket_of(desc.range.start), members)
        assert desc.home_nodes[0] == director

    def test_second_lookup_hits_local_directory(self, ring_cluster):
        desc = reserve_on(ring_cluster, node=1)
        reader = next(n for n in ring_cluster.node_ids()
                      if n not in desc.home_nodes)
        kz = ring_cluster.client(node=reader)
        kz.read_at(desc.rid, 4)
        before = dict(ring_cluster.daemon(reader).stats.lookup_tiers)
        kz.read_at(desc.rid, 4)
        after = ring_cluster.daemon(reader).stats.lookup_tiers
        assert after.get("directory", 0) > before.get("directory", 0)

    def test_many_regions_resolve_from_every_node(self, ring_cluster):
        descs = [reserve_on(ring_cluster, node=1,
                            payload=f"r{i}".encode().ljust(4, b"."))
                 for i in range(8)]
        ring_cluster.run(1.0)
        for node in ring_cluster.node_ids():
            kz = ring_cluster.client(node=node)
            for i, desc in enumerate(descs):
                expected = f"r{i}".encode().ljust(4, b".")
                assert kz.read_at(desc.rid, 4) == expected

    def test_unknown_address_still_fails_cleanly(self, ring_cluster):
        kz = ring_cluster.client(node=2)
        with pytest.raises(RegionNotFound):
            kz.read_at(0x7777777770000, 4)

    def test_ring_tier_recorded_in_stats_enum(self, ring_cluster):
        desc = reserve_on(ring_cluster, node=1)
        reader = next(n for n in ring_cluster.node_ids()
                      if n not in desc.home_nodes)
        ring_cluster.client(node=reader).read_at(desc.rid, 4)
        tiers = ring_cluster.daemon(reader).stats.lookup_tiers
        assert set(tiers) <= {"directory", "ring", "map", "walk"}


class TestMembership:
    def test_bootstrap_seeds_full_member_set(self, ring_cluster):
        for node in ring_cluster.node_ids():
            membership = ring_cluster.daemon(node).membership
            assert membership.members() == [0, 1, 2, 3]

    def test_join_gossip_reaches_every_member(self, ring_cluster):
        fresh = ring_cluster.add_node()
        ring_cluster.run(2.0)
        for node in ring_cluster.node_ids():
            membership = ring_cluster.daemon(node).membership
            assert fresh.node_id in membership.members(), node

    def test_newcomer_learns_existing_members(self, ring_cluster):
        fresh = ring_cluster.add_node()
        ring_cluster.run(2.0)
        assert fresh.membership.members() == [0, 1, 2, 3, fresh.node_id]

    def test_clean_leave_removes_member_everywhere(self, ring_cluster):
        ring_cluster.run(1.0)
        ring_cluster.remove_node(3)
        ring_cluster.run(2.0)
        for node in ring_cluster.node_ids():
            assert 3 not in ring_cluster.daemon(node).membership.members()

    def test_focus_pinging_is_bounded(self, ring_cluster):
        """Each member pings only its ring successors, so liveness
        cost stays O(1) per member as the ring grows."""
        for _ in range(3):
            ring_cluster.add_node()
        ring_cluster.run(2.0)
        for node in ring_cluster.node_ids():
            membership = ring_cluster.daemon(node).membership
            assert 0 < len(membership._focus) <= FOCUS_SUCCESSORS

    def test_crash_detected_and_gossiped(self, ring_cluster):
        ring_cluster.run(1.0)
        ring_cluster.crash(2)
        ring_cluster.run(15.0)   # ping rounds + death gossip
        for node in (0, 1, 3):
            membership = ring_cluster.daemon(node).membership
            assert 2 not in membership.alive_members()

    def test_new_node_reads_existing_data(self, ring_cluster):
        desc = reserve_on(ring_cluster, node=1, payload=b"pre-join")
        fresh = ring_cluster.add_node()
        ring_cluster.run(2.0)
        kz = ring_cluster.client(node=fresh.node_id)
        assert kz.read_at(desc.rid, 8) == b"pre-join"


class TestRehoming:
    def test_join_rehomes_regions_to_new_director(self):
        """A join moves ~regions/nodes regions onto the newcomer, live
        (paper Section 3: machines dynamically enter and contribute
        resources)."""
        cluster = create_cluster(num_nodes=3, config=ring_config())
        descs = [reserve_on(cluster, node=1, size=BUCKET_BYTES,
                            payload=f"v{i}".encode().ljust(4, b"."))
                 for i in range(12)]
        cluster.run(1.0)
        fresh = cluster.add_node()
        cluster.run(20.0)   # join gossip + re-home migrations
        members = fresh.membership.alive_members()
        moved = 0
        for desc in descs:
            director = director_of(bucket_of(desc.range.start), members)
            if director != fresh.node_id:
                continue
            moved += 1
            promoted = fresh.homed_regions.get(desc.rid)
            assert promoted is not None, (
                f"region {desc.rid:#x} should have re-homed onto "
                f"node {fresh.node_id}"
            )
            assert promoted.primary_home == fresh.node_id
        assert moved >= 1   # 12 regions over 4 members: newcomer wins some
        # Data survives the moves and resolves from everywhere.
        for i, desc in enumerate(descs):
            expected = f"v{i}".encode().ljust(4, b".")
            assert cluster.client(node=0).read_at(desc.rid, 4) == expected

    def test_rehome_counter_visible_in_report(self):
        cluster = create_cluster(num_nodes=3, config=ring_config())
        for i in range(12):
            reserve_on(cluster, node=1, size=BUCKET_BYTES)
        cluster.run(1.0)
        cluster.add_node()
        cluster.run(20.0)
        proposed = sum(
            cluster.daemon(n).placement.report()["rehomes_proposed"]
            for n in cluster.node_ids()
        )
        assert proposed >= 1

    def test_stale_client_follows_region_after_rehome(self):
        """The ordered request_home failover: a client whose cached
        descriptor predates a re-home is redirected by the old home's
        NAK to the new director instead of failing."""
        cluster = create_cluster(num_nodes=3, config=ring_config())
        descs = [reserve_on(cluster, node=1, size=BUCKET_BYTES,
                            payload=f"s{i}".encode().ljust(4, b"."))
                 for i in range(12)]
        reader = 2
        kz = cluster.client(node=reader)
        for desc in descs:
            kz.read_at(desc.rid, 4)   # warm (soon-stale) descriptors
        fresh = cluster.add_node()
        cluster.run(20.0)   # re-homes complete; reader caches go stale
        for i, desc in enumerate(descs):
            expected = f"s{i}".encode().ljust(4, b".")
            assert kz.read_at(desc.rid, 4) == expected
