"""Tests for the CREW protocol (paper Sections 3.3, 5, Figure 2)."""

import pytest

from repro.consistency.manager import LocalPageState
from repro.core.attributes import RegionAttributes
from repro.core.locks import LockMode
from repro.net.message import MessageType


def make_region(cluster, node=1, size=4096, **attr_kwargs):
    kz = cluster.client(node=node)
    desc = kz.reserve(size, RegionAttributes(**attr_kwargs))
    kz.allocate(desc.rid)
    return kz, desc


class TestReadSharing:
    def test_many_readers_cache_copies(self, cluster):
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"shared")
        for node in (0, 2, 3):
            assert cluster.client(node=node).read_at(desc.rid, 6) == b"shared"
        # Every reader now holds a local copy...
        for node in (0, 2, 3):
            assert cluster.daemon(node).storage.contains(desc.rid)
        # ...and the home's copyset knows them all.
        entry = cluster.daemon(1).page_directory.get(desc.rid)
        assert {0, 1, 2, 3} <= entry.sharers

    def test_second_read_is_local(self, cluster):
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"x")
        reader = cluster.client(node=3)
        reader.read_at(desc.rid, 1)
        before = cluster.stats.snapshot()
        reader.read_at(desc.rid, 1)
        delta = cluster.stats.delta_since(before)
        assert delta.count(MessageType.LOCK_REQUEST) == 0
        assert delta.count(MessageType.PAGE_FETCH) == 0


class TestWriteInvalidation:
    def test_write_invalidates_remote_copies(self, cluster):
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"v1")
        reader = cluster.client(node=3)
        assert reader.read_at(desc.rid, 2) == b"v1"
        kz1.write_at(desc.rid, b"v2")
        # Node 3's copy must be gone (invalidated), then re-fetched.
        cm3 = cluster.daemon(3).consistency_manager("crew")
        assert cm3.page_state.get(desc.rid) in (None, LocalPageState.INVALID)
        assert reader.read_at(desc.rid, 2) == b"v2"

    def test_remote_write_takes_ownership(self, cluster):
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"from-1")
        kz2 = cluster.client(node=2)
        kz2.write_at(desc.rid, b"from-2")
        entry = cluster.daemon(1).page_directory.get(desc.rid)
        assert entry.owner == 2
        assert entry.sharers == {2}
        # And the original writer sees the new data.
        assert kz1.read_at(desc.rid, 6) == b"from-2"

    def test_ping_pong_writes_converge(self, cluster):
        kz1, desc = make_region(cluster)
        kz2 = cluster.client(node=2)
        for i in range(6):
            writer = kz1 if i % 2 == 0 else kz2
            writer.write_at(desc.rid, f"gen-{i}".encode())
        assert cluster.client(node=3).read_at(desc.rid, 5) == b"gen-5"

    def test_write_after_read_upgrade(self, cluster):
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"base")
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 4)           # node 3 becomes a sharer
        kz3.write_at(desc.rid, b"next")    # upgrade: invalidate others
        entry = cluster.daemon(1).page_directory.get(desc.rid)
        assert entry.owner == 3
        assert cluster.client(node=0).read_at(desc.rid, 4) == b"next"

    def test_sequential_consistency_no_stale_read_after_write(self, cluster):
        """CREW gives Lamport ordering: once the writer's unlock
        completes, every subsequent read anywhere sees the new value."""
        kz1, desc = make_region(cluster)
        readers = [cluster.client(node=n) for n in (0, 2, 3)]
        for generation in range(5):
            value = f"g{generation:04d}".encode()
            kz1.write_at(desc.rid, value)
            for reader in readers:
                assert reader.read_at(desc.rid, 5) == value


class TestLocalConflicts:
    def test_write_shared_rejected_by_crew(self, cluster):
        kz, desc = make_region(cluster)
        from repro.core.errors import LockDenied

        with pytest.raises(LockDenied):
            kz.lock(desc.rid, 4096, LockMode.WRITE_SHARED)

    def test_deferred_invalidation_respects_reader(self, cluster):
        """A remote write must wait for a local read lock to clear:
        the CM 'delays granting the locks until the conflict is
        resolved' (Section 3.3)."""
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"stable")
        kz3 = cluster.client(node=3)
        ctx = kz3.lock(desc.rid, 4096, LockMode.READ)
        # Start a remote write; it cannot complete while node 3 reads.
        write_future = kz1.submit(
            kz1.daemon.op_write_locked_probe
            if False else _locked_write(kz1, desc), "bg-write"
        )
        cluster.run(2.0)
        assert not write_future.done   # still waiting on the reader
        assert kz3.read(ctx, desc.rid, 6) == b"stable"
        kz3.unlock(ctx)
        cluster.run(2.0)
        assert write_future.done and write_future.exception() is None
        assert kz3.read_at(desc.rid, 3) == b"new"


def _locked_write(session, desc):
    """Protocol generator: full lock-write-unlock cycle on the daemon."""
    from repro.core.addressing import AddressRange

    daemon = session.daemon
    target = AddressRange(desc.rid, 4096)

    def task():
        ctx = yield from daemon.op_lock(target, LockMode.WRITE,
                                        session.principal)
        yield from daemon.op_write(ctx, AddressRange(desc.rid, 3), b"new")
        yield from daemon.op_unlock(ctx)

    return task()


class TestFigure2Path:
    def test_owner_hint_enables_direct_fetch(self, cluster):
        """Figure 2: with a page-directory hint, the requester's CM
        asks the owner's CM directly (steps 5-11)."""
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"owned-by-1")
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 10)
        # Invalidate node 3 but leave its page-directory hint intact:
        kz2 = cluster.client(node=2)   # not used further
        cluster.daemon(3).drop_local_page(desc.rid)
        cm3 = cluster.daemon(3).consistency_manager("crew")
        cm3.page_state[desc.rid] = LocalPageState.INVALID
        hint = cluster.daemon(3).page_directory.get(desc.rid)
        assert hint is not None and hint.owner == 1
        before = cluster.stats.snapshot()
        assert kz3.read_at(desc.rid, 10) == b"owned-by-1"
        delta = cluster.stats.delta_since(before)
        # Served by a direct owner lock request, not a home-mediated
        # page fetch.
        assert delta.count(MessageType.LOCK_REQUEST) >= 1
        assert delta.count(MessageType.PAGE_FETCH) == 0

    def test_stale_owner_hint_falls_back_to_home(self, cluster):
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"data")
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 4)
        cluster.daemon(3).drop_local_page(desc.rid)
        cm3 = cluster.daemon(3).consistency_manager("crew")
        cm3.page_state[desc.rid] = LocalPageState.INVALID
        # Poison the hint: point at a node that never owned the page.
        cluster.daemon(3).page_directory.get(desc.rid).owner = 2
        assert kz3.read_at(desc.rid, 4) == b"data"


class TestWriteback:
    def test_dirty_page_written_back_to_secondary_homes(self, cluster):
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(4096, RegionAttributes(min_replicas=2))
        kz1.allocate(desc.rid)
        assert len(desc.home_nodes) == 2
        secondary = desc.home_nodes[1]
        kz1.write_at(desc.rid, b"durable")
        cluster.run(1.0)
        assert cluster.daemon(secondary).storage.contains(desc.rid)
        page = cluster.daemon(secondary).storage.peek(desc.rid)
        assert page.data[:7] == b"durable"
