"""Tests for lock modes, contexts, and the per-node lock table."""

import pytest

from repro.core.addressing import AddressRange
from repro.core.errors import InvalidLockContext
from repro.core.locks import LockContext, LockMode, LockTable


def ctx(start=0, length=4096, mode=LockMode.READ, node=1):
    return LockContext(rid=0, range=AddressRange(start, length),
                       mode=mode, node_id=node, principal="u")


class TestLockModes:
    def test_read_read_compatible(self):
        assert not LockMode.READ.conflicts_with(LockMode.READ)

    def test_write_conflicts_with_everything_strict(self):
        assert LockMode.WRITE.conflicts_with(LockMode.READ)
        assert LockMode.WRITE.conflicts_with(LockMode.WRITE)
        assert LockMode.READ.conflicts_with(LockMode.WRITE)

    def test_write_shared_self_compatible(self):
        assert not LockMode.WRITE_SHARED.conflicts_with(LockMode.WRITE_SHARED)
        assert LockMode.WRITE_SHARED.conflicts_with(LockMode.READ)

    def test_is_write(self):
        assert LockMode.WRITE.is_write
        assert LockMode.WRITE_SHARED.is_write
        assert not LockMode.READ.is_write


class TestLockContext:
    def test_check_covers_accepts_subrange(self):
        c = ctx(0, 8192, LockMode.WRITE)
        c.check_covers(AddressRange(4096, 100), for_write=True)

    def test_check_covers_rejects_outside(self):
        c = ctx(0, 4096)
        with pytest.raises(InvalidLockContext):
            c.check_covers(AddressRange(4096, 1), for_write=False)

    def test_read_mode_rejects_write(self):
        c = ctx(0, 4096, LockMode.READ)
        with pytest.raises(InvalidLockContext):
            c.check_covers(AddressRange(0, 10), for_write=True)

    def test_closed_context_rejected(self):
        c = ctx()
        c.closed = True
        with pytest.raises(InvalidLockContext):
            c.check_open()

    def test_unique_ids(self):
        assert ctx().ctx_id != ctx().ctx_id


class TestLockTable:
    def test_register_and_lookup(self):
        table = LockTable()
        c = ctx()
        table.register(c, [0])
        assert table.lookup(c.ctx_id) is c
        assert table.page_locked(0)
        assert len(table) == 1

    def test_release_closes_and_unindexes(self):
        table = LockTable()
        c = ctx()
        table.register(c, [0, 4096])
        table.release(c, [0, 4096])
        assert c.closed
        assert not table.page_locked(0)
        with pytest.raises(InvalidLockContext):
            table.lookup(c.ctx_id)

    def test_release_unregistered_raises(self):
        table = LockTable()
        with pytest.raises(InvalidLockContext):
            table.release(ctx(), [0])

    def test_conflicts_read_read(self):
        table = LockTable()
        table.register(ctx(mode=LockMode.READ), [0])
        assert not table.conflicts(0, LockMode.READ)
        assert table.conflicts(0, LockMode.WRITE)

    def test_conflicts_ignore_self(self):
        table = LockTable()
        c = ctx(mode=LockMode.WRITE)
        table.register(c, [0])
        assert table.conflicts(0, LockMode.WRITE)
        assert not table.conflicts(0, LockMode.WRITE, ignore=c)

    def test_holders_per_page(self):
        table = LockTable()
        c1 = ctx(mode=LockMode.READ)
        c2 = ctx(mode=LockMode.READ)
        table.register(c1, [0, 4096])
        table.register(c2, [4096])
        assert {h.ctx_id for h in table.holders(4096)} == {c1.ctx_id, c2.ctx_id}
        assert [h.ctx_id for h in table.holders(0)] == [c1.ctx_id]
        assert table.holders(8192) == []

    def test_live_contexts_iteration(self):
        table = LockTable()
        contexts = [ctx() for _ in range(3)]
        for c in contexts:
            table.register(c, [0])
        assert {c.ctx_id for c in table.live_contexts()} == {
            c.ctx_id for c in contexts
        }
