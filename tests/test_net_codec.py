"""Tests for the binary wire codec (repro.net.codec).

Three layers of coverage:

- example round-trips for every registered hot message type, with
  realistic payloads (batch item lists, diff-run tuples, error codes);
- hypothesis property tests over the codec's whole value vocabulary,
  pinning decode(encode(m)) == m and len(encode(m)) == encoded_size(m);
- an end-to-end test that taps a live simulated cluster and checks
  every hot-type message actually sent encodes, sizes, and round-trips.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.locks import LockMode
from repro.net.codec import WIRE_IDS, decode, encode, encoded_size
from repro.net.message import ENVELOPE_BYTES, Message, MessageType

PAGE = 4096

#: One realistic payload per registered hot type.  Addresses are
#: 128-bit-scale ints on purpose: the varint encoding must survive
#: values far beyond any fixed-width field.
EXAMPLE_PAYLOADS = {
    MessageType.PAGE_FETCH: {"rid": 1 << 100, "page": (1 << 100) + PAGE},
    MessageType.PAGE_DATA: {"data": b"\x00\xffpage" * 512, "version": 7},
    MessageType.LOCK_REQUEST: {
        "rid": 123, "page": 456, "mode": "write", "requester": 2,
    },
    MessageType.LOCK_REPLY: {
        "granted": True, "sharers": [1, 2, 3], "version": 9,
    },
    MessageType.UPDATE_PUSH: {
        "rid": 5, "page": PAGE,
        "diff": [(0, b"abc"), (4000, b"\x01" * 96)],
        "release_token": False,
    },
    MessageType.UPDATE_ACK: {"applied": True},
    MessageType.INVALIDATE: {"rid": 5, "page": 0, "epoch": 3},
    MessageType.INVALIDATE_ACK: {"page": 0},
    MessageType.SHARER_REGISTER: {"rid": 5, "page": 0, "node": 3},
    MessageType.SHARER_UNREGISTER: {"rid": 5, "page": 0, "node": 3},
    MessageType.PAGE_FETCH_BATCH: {"rid": 5, "pages": [0, PAGE, 2 * PAGE]},
    MessageType.PAGE_DATA_BATCH: {
        "pages": [
            {"page": 0, "data": b"x" * PAGE, "version": 1},
            {"page": PAGE, "data": b"y" * PAGE, "version": 2},
        ],
    },
    MessageType.TOKEN_ACQUIRE_BATCH: {
        "rid": 5, "pages": [0, PAGE], "mode": "write", "requester": 2,
    },
    MessageType.TOKEN_GRANT_BATCH: {
        "granted": [0, PAGE], "denied": [], "sharers": {"0": [1], "4096": []},
    },
    MessageType.UPDATE_PUSH_BATCH: {
        "rid": 5,
        "updates": [
            {"page": 0, "data": b"x" * PAGE, "release_token": True},
            {"page": PAGE, "diff": [(16, b"hole")], "release_token": True},
        ],
    },
    MessageType.UPDATE_ACK_BATCH: {"applied": 2},
    MessageType.ERROR: {"code": "lock_denied", "detail": "busy"},
}


def roundtrip(msg: Message) -> Message:
    wire = encode(msg)
    assert wire is not None
    assert len(wire) == encoded_size(msg)
    return decode(wire)


def assert_messages_equal(a: Message, b: Message) -> None:
    assert a.msg_type is b.msg_type
    assert (a.src, a.dst, a.msg_id) == (b.src, b.dst, b.msg_id)
    assert a.request_id == b.request_id
    assert a.reply_to == b.reply_to
    assert a.payload == b.payload
    # Container *types* survive too: diff runs must come back as
    # tuples, batch item lists as lists.
    def types_of(value):
        if isinstance(value, (list, tuple)):
            return (type(value), [types_of(v) for v in value])
        if isinstance(value, dict):
            return {k: types_of(v) for k, v in value.items()}
        return type(value)

    assert types_of(a.payload) == types_of(b.payload)


class TestExampleRoundTrips:
    @pytest.mark.parametrize(
        "msg_type", sorted(WIRE_IDS, key=lambda t: WIRE_IDS[t])
    )
    def test_every_registered_type_round_trips(self, msg_type):
        assert msg_type in EXAMPLE_PAYLOADS, (
            f"add an example payload for {msg_type} to EXAMPLE_PAYLOADS"
        )
        msg = Message(msg_type, src=1, dst=2,
                      payload=EXAMPLE_PAYLOADS[msg_type], request_id=42)
        assert_messages_equal(msg, roundtrip(msg))

    def test_error_reply_round_trips(self):
        request = Message(MessageType.PAGE_FETCH, src=1, dst=2,
                          payload={"rid": 9, "page": 0}, request_id=5)
        nak = request.error_reply("region_not_found", "gone")
        revived = roundtrip(nak)
        assert revived.reply_to == 5
        assert revived.payload == {"code": "region_not_found",
                                   "detail": "gone"}

    def test_optional_header_fields_survive(self):
        bare = Message(MessageType.PAGE_FETCH, src=0, dst=3,
                       payload={"page": 0})
        revived = roundtrip(bare)
        assert revived.request_id is None and revived.reply_to is None

    def test_bytearray_and_memoryview_decode_as_bytes(self):
        backing = bytearray(b"q" * 64)
        msg = Message(MessageType.PAGE_DATA, src=1, dst=2, payload={
            "a": backing, "b": memoryview(backing)[16:32],
        })
        revived = roundtrip(msg)
        assert revived.payload == {"a": b"q" * 64, "b": b"q" * 16}
        # ...and all three spellings are charged the same wire size.
        as_bytes = Message(MessageType.PAGE_DATA, src=1, dst=2, payload={
            "a": b"q" * 64, "b": b"q" * 16,
        }, msg_id=msg.msg_id)
        assert encoded_size(msg) == encoded_size(as_bytes)


class TestFallback:
    def test_cold_type_returns_none(self):
        msg = Message(MessageType.REGION_LOOKUP, src=1, dst=2,
                      payload={"rid": 5})
        assert encode(msg) is None
        assert encoded_size(msg) is None
        # size_bytes still works via the object estimator.
        assert msg.size_bytes() >= ENVELOPE_BYTES

    def test_unencodable_payload_returns_none(self):
        msg = Message(MessageType.PAGE_DATA, src=1, dst=2,
                      payload={"descriptor": object()})
        assert encode(msg) is None
        assert encoded_size(msg) is None
        assert msg.size_bytes() >= ENVELOPE_BYTES

    def test_non_str_key_returns_none(self):
        msg = Message(MessageType.PAGE_DATA, src=1, dst=2,
                      payload={1: b"x"})
        assert encode(msg) is None
        assert encoded_size(msg) is None
        nested = Message(MessageType.PAGE_DATA, src=1, dst=2,
                         payload={"map": {1: b"x"}})
        assert encode(nested) is None
        assert encoded_size(nested) is None


class TestMalformedInput:
    def test_bad_magic_rejected(self):
        wire = encode(Message(MessageType.PAGE_FETCH, src=1, dst=2,
                              payload={"page": 0}))
        with pytest.raises(ValueError, match="magic"):
            decode(b"\x00" + wire[1:])

    def test_unknown_wire_id_rejected(self):
        wire = encode(Message(MessageType.PAGE_FETCH, src=1, dst=2,
                              payload={"page": 0}))
        with pytest.raises(ValueError, match="wire type"):
            decode(wire[:1] + b"\xfe" + wire[2:])

    def test_trailing_bytes_rejected(self):
        wire = encode(Message(MessageType.PAGE_FETCH, src=1, dst=2,
                              payload={"page": 0}))
        with pytest.raises(ValueError, match="trailing"):
            decode(wire + b"\x00")


# --- property tests --------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(1 << 140), max_value=1 << 140),
    st.floats(allow_nan=False, allow_infinity=False),
    st.binary(max_size=64),
    st.text(max_size=32),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)

payloads = st.dictionaries(st.text(max_size=12), values, max_size=5)

hot_types = st.sampled_from(sorted(WIRE_IDS, key=lambda t: WIRE_IDS[t]))

headers = st.tuples(
    st.integers(min_value=0, max_value=2 ** 31 - 1),     # src
    st.integers(min_value=0, max_value=2 ** 31 - 1),     # dst
    st.none() | st.integers(min_value=0, max_value=2 ** 62),  # request_id
    st.none() | st.integers(min_value=0, max_value=2 ** 62),  # reply_to
)


class TestProperties:
    @settings(max_examples=200, deadline=None)
    @given(msg_type=hot_types, payload=payloads, header=headers)
    def test_roundtrip_and_size_agree(self, msg_type, payload, header):
        src, dst, request_id, reply_to = header
        msg = Message(msg_type, src=src, dst=dst, payload=payload,
                      request_id=request_id, reply_to=reply_to)
        assert_messages_equal(msg, roundtrip(msg))

    @settings(max_examples=200, deadline=None)
    @given(payload=payloads)
    def test_size_bytes_reports_exact_codec_length(self, payload):
        msg = Message(MessageType.UPDATE_PUSH_BATCH, src=1, dst=2,
                      payload=payload)
        assert msg.size_bytes() == len(encode(msg))


# --- end to end ------------------------------------------------------------

class TestLiveTraffic:
    def test_every_hot_message_on_the_wire_round_trips(self, quiet_cluster):
        """Tap a live cluster: every hot-type message actually sent must
        be codec-encodable (no silent estimator fallback on the data
        path), size exactly, and survive a decode round-trip."""
        cluster = quiet_cluster
        seen = []
        cluster.network.tap(
            lambda m: seen.append(m) if m.msg_type in WIRE_IDS else None
        )

        owner = cluster.client(node=1)
        attrs = RegionAttributes(
            consistency_level=ConsistencyLevel.RELEASE
        )
        desc = owner.reserve(4 * PAGE, attrs)
        owner.allocate(desc.rid)
        # Write from a non-home node so the unlock pushes its updates
        # over the wire as an UPDATE_PUSH_BATCH.
        writer = cluster.client(node=2)
        ctx = writer.lock(desc.rid, 4 * PAGE, LockMode.WRITE)
        writer.write(ctx, desc.rid, b"w" * (4 * PAGE))
        writer.unlock(ctx)
        reader = cluster.client(node=3)
        assert reader.read_at(desc.rid, 4 * PAGE) == b"w" * (4 * PAGE)

        hot_kinds = {m.msg_type for m in seen}
        assert MessageType.PAGE_FETCH_BATCH in hot_kinds
        assert MessageType.UPDATE_PUSH_BATCH in hot_kinds
        for msg in seen:
            wire = encode(msg)
            assert wire is not None, f"estimator fallback on {msg!r}"
            assert len(wire) == encoded_size(msg) == msg.size_bytes()
            revived = decode(wire)
            assert revived.msg_type is msg.msg_type
            assert (revived.src, revived.dst) == (msg.src, msg.dst)
            assert revived.request_id == msg.request_id
            assert revived.reply_to == msg.reply_to
            # Live page data travels as zero-copy memoryviews and
            # decodes as bytes; == compares the underlying buffers.
            assert revived.payload == msg.payload
