"""Edge-case tests for the daemon's plumbing: handler NAKs, duplicate
suppression, timeouts, and the sync client driver."""

import pytest

from repro.api import create_cluster
from repro.core.client import SyncDriver
from repro.core.errors import KhazanaError, KhazanaTimeout, LockDenied
from repro.net.clock import EventScheduler
from repro.net.message import Message, MessageType
from repro.net.tasks import Future


class TestSpawnHandler:
    def test_khazana_error_becomes_typed_nak(self, cluster):
        daemon1 = cluster.daemon(1)
        daemon2 = cluster.daemon(2)

        def failing_handler(msg):
            def task():
                raise LockDenied("handler says no")
                yield  # pragma: no cover

            daemon2.spawn_handler(msg, task(), label="fail")

        daemon2.rpc.on(MessageType.PAGE_FETCH, failing_handler)
        future = daemon1.rpc.request(2, MessageType.PAGE_FETCH, {})
        from repro.net.rpc import RemoteError

        with pytest.raises(RemoteError) as info:
            cluster.driver.wait(future)
        assert info.value.code == "lock_denied"

    def test_non_khazana_error_becomes_generic_nak(self, cluster):
        daemon1 = cluster.daemon(1)
        daemon2 = cluster.daemon(2)

        def crashing_handler(msg):
            def task():
                raise RuntimeError("bug!")
                yield  # pragma: no cover

            daemon2.spawn_handler(msg, task(), label="crash")

        daemon2.rpc.on(MessageType.PAGE_FETCH, crashing_handler)
        future = daemon1.rpc.request(2, MessageType.PAGE_FETCH, {})
        from repro.net.rpc import RemoteError

        with pytest.raises(RemoteError) as info:
            cluster.driver.wait(future)
        assert info.value.code == "khazana_error"


class TestDuplicateSuppression:
    def test_duplicate_request_gets_cached_reply(self, cluster):
        """A retransmitted request must receive the same answer
        without re-running the handler."""
        daemon2 = cluster.daemon(2)
        calls = []

        def handler(msg):
            calls.append(msg)
            daemon2.reply_request(msg, MessageType.PONG, {"n": len(calls)})

        daemon2.rpc.on(MessageType.PING, daemon2.router.dedup(handler))
        # Hand-craft two identical transmissions of one request.
        request = Message(MessageType.PING, src=1, dst=2, request_id=4242)
        cluster.network.send(request)
        cluster.run(0.1)
        duplicate = Message(MessageType.PING, src=1, dst=2,
                            request_id=4242)
        replies = []
        cluster.network.attach(1, lambda m: replies.append(m))
        cluster.network.send(duplicate)
        cluster.run(0.1)
        assert len(calls) == 1          # handler ran once
        assert len(replies) == 1        # cached reply re-sent
        assert replies[0].payload == {"n": 1}

    def test_in_progress_duplicate_dropped(self, cluster):
        daemon2 = cluster.daemon(2)
        started = []

        def slow_handler(msg):
            started.append(msg)
            # Never replies: simulates a long transaction in progress.

        daemon2.rpc.on(MessageType.PAGE_FETCH, daemon2.router.dedup(slow_handler))
        for _ in range(3):
            cluster.network.send(
                Message(MessageType.PAGE_FETCH, src=1, dst=2,
                        request_id=777)
            )
        cluster.run(0.1)
        assert len(started) == 1


class TestTimeouts:
    def test_with_timeout_fires(self, cluster):
        daemon = cluster.daemon(1)
        never = Future("never")
        wrapped = daemon.with_timeout(never, 0.5, KhazanaTimeout("late"))
        cluster.run(1.0)
        with pytest.raises(KhazanaTimeout):
            wrapped.result()

    def test_with_timeout_passthrough(self, cluster):
        daemon = cluster.daemon(1)
        inner = Future("quick")
        wrapped = daemon.with_timeout(inner, 5.0, KhazanaTimeout("late"))
        inner.set_result("value")
        assert wrapped.result() == "value"
        cluster.run(10.0)   # timer fires later; must be harmless

    def test_sleep_advances_virtual_time(self, cluster):
        daemon = cluster.daemon(1)
        before = cluster.now
        cluster.driver.wait(daemon.sleep(0.75))
        assert cluster.now == pytest.approx(before + 0.75)

    def test_zero_sleep_immediate(self, cluster):
        daemon = cluster.daemon(1)
        future = daemon.sleep(0)
        assert future.done


class TestSyncDriver:
    def test_deadlock_detected(self):
        driver = SyncDriver(EventScheduler())
        stuck = Future("stuck")
        with pytest.raises(KhazanaError):
            driver.wait(stuck)

    def test_exception_propagates(self):
        scheduler = EventScheduler()
        driver = SyncDriver(scheduler)
        failing = Future("failing")
        scheduler.call_later(
            0.1, lambda: failing.set_exception(LockDenied("no"))
        )
        with pytest.raises(LockDenied):
            driver.wait(failing)


class TestStatsSurface:
    def test_op_counters_accumulate(self, cluster):
        kz = cluster.client(node=1)
        desc = kz.reserve(4096)
        kz.allocate(desc.rid)
        kz.write_at(desc.rid, b"x")
        kz.read_at(desc.rid, 1)
        ops = cluster.daemon(1).stats.ops
        for op in ("reserve", "allocate", "lock", "unlock", "read", "write"):
            assert ops.get(op, 0) >= 1, op
