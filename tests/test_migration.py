"""Tests for region home migration and the load-aware policy.

Both are listed future work in the paper's conclusion ("resource- and
load-aware migration and replication policies"); Section 3.2 already
tolerates the consequences ("Regions do not migrate home nodes often,
so the cached value is most likely accurate" — and stale values only
cost a redirect).
"""

import pytest

from repro.api import create_cluster
from repro.core.attributes import RegionAttributes
from repro.core.daemon import DaemonConfig
from repro.core.errors import InvalidRange
from repro.core.migration import MIN_SAMPLES


def make_region(cluster, node=1, payload=b"movable", **attrs):
    kz = cluster.client(node=node)
    desc = kz.reserve(4096, RegionAttributes(**attrs))
    kz.allocate(desc.rid)
    kz.write_at(desc.rid, payload)
    return kz, desc


class TestExplicitMigration:
    def test_primary_home_moves(self, cluster):
        kz, desc = make_region(cluster)
        new_desc = kz.migrate(desc.rid, 3)
        assert new_desc.primary_home == 3
        assert desc.rid in cluster.daemon(3).homed_regions
        assert desc.rid not in cluster.daemon(1).homed_regions

    def test_data_intact_after_migration(self, cluster):
        kz, desc = make_region(cluster, payload=b"carried-over")
        kz.migrate(desc.rid, 3)
        cluster.run(2.0)
        for node in (0, 1, 2, 3):
            got = cluster.client(node=node).read_at(desc.rid, 12)
            assert got == b"carried-over"

    def test_writes_after_migration_stay_consistent(self, cluster):
        kz, desc = make_region(cluster)
        kz.migrate(desc.rid, 3)
        cluster.run(2.0)
        cluster.client(node=2).write_at(desc.rid, b"post-move")
        assert cluster.client(node=0).read_at(desc.rid, 9) == b"post-move"
        # The new home's directory is authoritative now.
        entry = cluster.daemon(3).page_directory.get(desc.rid)
        assert entry is not None and entry.homed

    def test_migrate_requested_from_third_party(self, cluster):
        _kz, desc = make_region(cluster)
        outsider = cluster.client(node=2)
        new_desc = outsider.migrate(desc.rid, 0)
        assert new_desc.primary_home == 0
        assert outsider.read_at(desc.rid, 7) == b"movable"

    def test_migrate_to_current_home_is_noop(self, cluster):
        kz, desc = make_region(cluster)
        same = kz.migrate(desc.rid, 1)
        assert same.primary_home == 1
        assert same.home_nodes == desc.home_nodes

    def test_migrate_interior_address_rejected(self, cluster):
        kz, desc = make_region(cluster)
        with pytest.raises(InvalidRange):
            kz.migrate(desc.rid + 100, 3)

    def test_old_writer_still_coherent(self, cluster):
        """Node 1 keeps its cached copy across the migration; a write
        at the new home must still invalidate it."""
        kz, desc = make_region(cluster, payload=b"v1")
        kz.migrate(desc.rid, 3)
        cluster.run(2.0)
        cluster.client(node=3).write_at(desc.rid, b"v2")
        assert kz.read_at(desc.rid, 2) == b"v2"

    def test_replicated_region_keeps_replica_count(self, cluster):
        kz, desc = make_region(cluster, min_replicas=2)
        new_desc = kz.migrate(desc.rid, 3)
        assert new_desc.primary_home == 3
        assert len(new_desc.home_nodes) >= 2
        cluster.run(3.0)
        assert cluster.client(node=2).read_at(desc.rid, 7) == b"movable"


class TestAutoMigration:
    def test_dominant_remote_user_attracts_region(self):
        config = DaemonConfig(enable_auto_migration=True)
        cluster = create_cluster(num_nodes=4, config=config)
        _kz, desc = make_region(cluster)
        heavy = cluster.client(node=3)
        # Node 3 dominates the region's traffic with writes (each one
        # is a remote lock request the advisor can see).
        for i in range(MIN_SAMPLES + 6):
            heavy.write_at(desc.rid, f"w{i}".encode())
            cluster.run(0.2)
        cluster.run(5.0)   # housekeeping ticks run the advisor
        assert desc.rid in cluster.daemon(3).homed_regions
        advisor = cluster.daemon(1).migration_advisor
        assert advisor.migrations_completed >= 1
        # And the data still reads correctly from everywhere.
        assert cluster.client(node=0).read_at(
            desc.rid, 3
        ) == f"w{MIN_SAMPLES + 5}".encode()[:3]

    def test_balanced_traffic_does_not_migrate(self):
        config = DaemonConfig(enable_auto_migration=True)
        cluster = create_cluster(num_nodes=4, config=config)
        _kz, desc = make_region(cluster)
        for i in range(MIN_SAMPLES * 2):
            node = 2 + (i % 2)   # split between nodes 2 and 3
            cluster.client(node=node).write_at(desc.rid, b"even")
            cluster.run(0.2)
        cluster.run(5.0)
        assert desc.rid in cluster.daemon(1).homed_regions
        assert cluster.daemon(1).migration_advisor.migrations_started == 0

    def test_advisor_counts_traffic(self, cluster):
        _kz, desc = make_region(cluster)
        cluster.client(node=3).read_at(desc.rid, 4)
        cluster.client(node=3).write_at(desc.rid, b"x")
        traffic = cluster.daemon(1).migration_advisor.traffic_for(desc.rid)
        assert traffic.get(3, 0) >= 2
