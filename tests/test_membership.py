"""Tests for dynamic membership (paper Section 3: "Machines can
dynamically enter and leave Khazana and contribute/reclaim local
resources")."""

import pytest

from repro.api import create_cluster, create_hierarchy
from repro.core.attributes import RegionAttributes


class TestJoin:
    def test_new_node_reads_existing_data(self, cluster):
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(4096)
        kz1.allocate(desc.rid)
        kz1.write_at(desc.rid, b"pre-join data")
        fresh = cluster.add_node()
        cluster.run(1.0)
        newcomer = cluster.client(node=fresh.node_id)
        assert newcomer.read_at(desc.rid, 13) == b"pre-join data"

    def test_new_node_contributes_address_space(self, cluster):
        fresh = cluster.add_node()
        cluster.run(1.0)
        newcomer = cluster.client(node=fresh.node_id)
        desc = newcomer.reserve(4096)
        newcomer.allocate(desc.rid)
        newcomer.write_at(desc.rid, b"from the newcomer")
        assert cluster.client(node=0).read_at(desc.rid, 17) == (
            b"from the newcomer"
        )

    def test_existing_nodes_learn_about_newcomer(self, cluster):
        fresh = cluster.add_node()
        cluster.run(5.0)   # ping rounds
        assert fresh.node_id in cluster.daemon(1).detector.alive_peers()

    def test_newcomer_eligible_as_replica_home(self, cluster):
        fresh = cluster.add_node()
        cluster.run(3.0)
        kz1 = cluster.client(node=1)
        # With every original peer plus the newcomer alive, a
        # 5-replica region must include the newcomer.
        desc = kz1.reserve(4096, RegionAttributes(min_replicas=5))
        assert fresh.node_id in desc.home_nodes

    def test_duplicate_node_id_rejected(self, cluster):
        with pytest.raises(ValueError):
            cluster.add_node(node=1)

    def test_join_into_hierarchy(self):
        hierarchy = create_hierarchy([2, 2])
        fresh = hierarchy.add_node()
        hierarchy.run(1.0)
        assert fresh.config.cluster_id == 0
        assert fresh.config.cluster_manager_node == 0
        kz = hierarchy.client(node=fresh.node_id)
        desc = kz.reserve(4096)
        assert desc is not None


class TestLeave:
    def test_clean_leave_triggers_repair(self):
        cluster = create_cluster(num_nodes=6)
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(4096, RegionAttributes(min_replicas=2))
        kz1.allocate(desc.rid)
        kz1.write_at(desc.rid, b"keep me")
        secondary = desc.home_nodes[1]
        cluster.run(2.0)
        cluster.remove_node(1)   # the primary leaves cleanly
        cluster.run(10.0)
        promoted = cluster.daemon(secondary).homed_regions.get(desc.rid)
        assert promoted is not None and promoted.primary_home == secondary
        assert cluster.client(node=4).read_at(desc.rid, 7) == b"keep me"

    def test_leave_then_rejoin_fresh(self, cluster):
        cluster.remove_node(3)
        cluster.run(2.0)
        fresh = cluster.add_node(node=3)
        cluster.run(2.0)
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(4096)
        kz1.allocate(desc.rid)
        kz1.write_at(desc.rid, b"hello again")
        assert cluster.client(node=3).read_at(desc.rid, 11) == (
            b"hello again"
        )
