"""Tests for failure handling (paper Section 3.5): retry queues,
failure detection, replica maintenance, home failover."""

import pytest

from repro.api import create_cluster
from repro.core.attributes import RegionAttributes
from repro.core.errors import KhazanaError
from repro.failure.detector import FailureDetector
from repro.failure.retry import RetryQueue
from repro.net.clock import EventScheduler
from repro.net.sim import SimNetwork
from repro.net.rpc import RpcEndpoint
from repro.net.tasks import TaskRunner


class TestRetryQueue:
    def make(self):
        sched = EventScheduler()
        runner = TaskRunner()
        queue = RetryQueue(sched, lambda gen, label: runner.spawn(gen, label))
        return sched, queue

    def test_success_first_try(self):
        sched, queue = self.make()
        calls = []

        def op():
            calls.append(1)
            return None
            yield  # pragma: no cover

        queue.enqueue(op, "op")
        sched.run_until_idle()
        assert calls == [1]
        assert queue.pending == 0
        assert queue.stats.succeeded == 1

    def test_retries_until_success_with_backoff(self):
        sched, queue = self.make()
        attempts = []

        def op():
            attempts.append(sched.now)
            if len(attempts) < 4:
                raise KhazanaError("transient")
            return None
            yield  # pragma: no cover

        queue.enqueue(op, "flaky")
        sched.run_until_idle()
        assert len(attempts) == 4
        assert queue.pending == 0
        # Backoff doubles: gaps 0.5, 1.0, 2.0.
        gaps = [b - a for a, b in zip(attempts, attempts[1:])]
        assert gaps == [0.5, 1.0, 2.0]

    def test_failure_never_gives_up(self):
        sched, queue = self.make()
        count = [0]

        def op():
            count[0] += 1
            raise KhazanaError("permanent")
            yield  # pragma: no cover

        queue.enqueue(op, "doomed")
        sched.run_until(120.0)
        assert queue.pending == 1
        assert count[0] >= 5
        assert "doomed" in queue.labels()

    def test_cancel(self):
        sched, queue = self.make()

        def op():
            raise KhazanaError("x")
            yield  # pragma: no cover

        item = queue.enqueue(op, "op")
        sched.run_until(1.0)
        assert queue.cancel(item)
        sched.run_until_idle()
        assert queue.pending == 0


class TestDetector:
    def make_pair(self):
        sched = EventScheduler()
        net = SimNetwork(sched)
        a = RpcEndpoint(1, net, sched)
        b = RpcEndpoint(2, net, sched)
        det = FailureDetector(a, sched, peers=[2], period=0.5,
                              miss_threshold=2)
        # Peer 2 answers pings via its own tiny detector.
        FailureDetector(b, sched, peers=[], period=0.5)
        return sched, net, det

    def test_alive_peer_stays_alive(self):
        sched, _net, det = self.make_pair()
        det.start()
        sched.run_until(5.0)
        assert det.alive_peers() == [2]

    def test_crash_detected_then_recovery(self):
        sched, net, det = self.make_pair()
        deaths, recoveries = [], []
        det.on_death(deaths.append)
        det.on_recovery(recoveries.append)
        det.start()
        sched.run_until(2.0)
        net.crash(2)
        sched.run_until(10.0)
        assert deaths == [2]
        assert det.dead_peers() == [2]
        net.recover(2)
        sched.run_until(20.0)
        assert recoveries == [2]
        assert det.alive_peers() == [2]

    def test_is_alive_for_unknown_peer_defaults_true(self):
        _sched, _net, det = self.make_pair()
        assert det.is_alive(99)


class TestCrashRecovery:
    def test_operations_survive_non_home_crash(self, cluster):
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(4096)
        kz1.allocate(desc.rid)
        kz1.write_at(desc.rid, b"alive")
        cluster.client(node=3).read_at(desc.rid, 5)
        cluster.crash(3)
        cluster.run(10.0)
        # Writing still works; the dead sharer is just dropped.
        kz1.write_at(desc.rid, b"after")
        assert cluster.client(node=2).read_at(desc.rid, 5) == b"after"

    def test_replicated_region_survives_primary_crash(self):
        cluster = create_cluster(num_nodes=6)
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(4096, RegionAttributes(min_replicas=3))
        kz1.allocate(desc.rid)
        kz1.write_at(desc.rid, b"precious")
        cluster.run(2.0)   # write-back reaches secondary homes
        cluster.crash(1)   # primary home dies
        cluster.run(15.0)  # detector + failover
        survivor = cluster.client(node=4)
        assert survivor.read_at(desc.rid, 8) == b"precious"

    def test_replica_maintainer_promotes_secondary(self):
        cluster = create_cluster(num_nodes=6)
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(4096, RegionAttributes(min_replicas=2))
        kz1.allocate(desc.rid)
        kz1.write_at(desc.rid, b"x")
        secondary = desc.home_nodes[1]
        cluster.run(2.0)
        cluster.crash(1)
        cluster.run(20.0)   # promotion + recruitment
        promoted = cluster.daemon(secondary).homed_regions.get(desc.rid)
        assert promoted is not None
        assert promoted.primary_home == secondary
        # Replica count restored with a recruit.
        assert len(promoted.home_nodes) >= 2

    def test_unreplicated_region_lost_with_home(self):
        cluster = create_cluster(num_nodes=4)
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(4096)   # min_replicas=1
        kz1.allocate(desc.rid)
        kz1.write_at(desc.rid, b"fragile")
        cluster.crash(1)
        cluster.run(10.0)
        kz3 = cluster.client(node=3)
        with pytest.raises(KhazanaError):
            kz3.read_at(desc.rid, 7)

    def test_unreserve_of_dead_home_retries_in_background(self):
        cluster = create_cluster(num_nodes=4)
        kz2 = cluster.client(node=2)
        desc = kz2.reserve(4096)
        kz2.allocate(desc.rid)
        # Unreserve succeeds at the client even while the map home is
        # briefly unreachable; the map update retries in background.
        cluster.crash(0)
        kz2.unreserve(desc.rid)   # must not raise (release-type)
        assert cluster.daemon(2).retry_queue.pending >= 1
        cluster.recover(0)
        cluster.run(120.0)
        assert cluster.daemon(2).retry_queue.pending == 0
