"""Tests for release consistency (paper Section 3.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency.release import apply_diff, compute_diff
from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.locks import LockMode
from repro.net.message import Message, MessageType


def make_region(cluster, node=1, size=4096, **kwargs):
    kz = cluster.client(node=node)
    attrs = RegionAttributes(
        consistency_level=ConsistencyLevel.RELEASE, **kwargs
    )
    desc = kz.reserve(size, attrs)
    kz.allocate(desc.rid)
    return kz, desc


class TestDiffs:
    def test_identical_pages_empty_diff(self):
        page = b"a" * 100
        assert compute_diff(page, page) == []

    def test_single_run(self):
        twin = b"aaaaaaaa"
        cur = b"aaXXaaaa"
        assert compute_diff(twin, cur) == [(2, b"XX")]

    def test_multiple_runs(self):
        twin = b"aaaaaaaa"
        cur = b"Xaaa aaY"
        diff = compute_diff(twin, cur)
        assert apply_diff(twin, diff) == cur
        assert len(diff) == 3

    def test_length_change_degenerates_to_full_page(self):
        assert compute_diff(b"aa", b"aaa") == [(0, b"aaa")]

    def test_apply_extends_short_base(self):
        assert apply_diff(b"ab", [(4, b"z")]) == b"ab\x00\x00z"

    @given(st.binary(min_size=1, max_size=200), st.binary(max_size=200))
    @settings(max_examples=200)
    def test_diff_apply_roundtrip(self, twin, tail):
        current = (tail + twin)[: len(twin)]
        diff = compute_diff(twin, current)
        assert apply_diff(twin, diff) == current

    @given(
        st.binary(min_size=32, max_size=64),
        st.lists(
            st.tuples(st.integers(0, 31), st.binary(min_size=1, max_size=8)),
            max_size=5,
        ),
    )
    @settings(max_examples=100)
    def test_non_overlapping_merge(self, base, edits):
        """Two writers editing disjoint ranges both survive the merge."""
        current = bytearray(base)
        for offset, data in edits:
            current[offset : offset + len(data)] = data
        current = bytes(current[: len(base)])
        diff = compute_diff(base, current)
        assert apply_diff(base, diff) == current


class TestReleaseProtocol:
    def test_write_then_read_roundtrip(self, cluster):
        kz, desc = make_region(cluster)
        kz.write_at(desc.rid, b"released")
        assert kz.read_at(desc.rid, 8) == b"released"

    def test_update_propagates_to_replicas(self, cluster):
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"v1")
        kz3 = cluster.client(node=3)
        assert kz3.read_at(desc.rid, 2) == b"v1"   # node 3 replicates
        kz1.write_at(desc.rid, b"v2")
        cluster.run(1.0)   # let the home's fanout arrive
        assert kz3.read_at(desc.rid, 2) == b"v2"

    def test_read_never_blocks_on_writer(self, cluster):
        """Under release consistency a reader sees its replica even
        while a remote writer holds the token."""
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"old")
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 3)
        ctx = kz1.lock(desc.rid, 4096, LockMode.WRITE)
        kz1.write(ctx, desc.rid, b"mid")
        # Reader is NOT blocked and sees the pre-release value.
        assert kz3.read_at(desc.rid, 3) == b"old"
        kz1.unlock(ctx)
        cluster.run(1.0)
        assert kz3.read_at(desc.rid, 3) == b"mid"

    def test_write_tokens_serialise_writers(self, cluster):
        kz1, desc = make_region(cluster, node=1)
        kz2 = cluster.client(node=2)
        ctx1 = kz1.lock(desc.rid, 4096, LockMode.WRITE)
        lock2 = kz2.lock_async(desc.rid, 4096, LockMode.WRITE)
        cluster.run(1.0)
        assert not lock2.done   # token held by node 1
        kz1.write(ctx1, desc.rid, b"first")
        kz1.unlock(ctx1)
        cluster.run(1.0)
        assert lock2.done
        ctx2 = lock2.result()
        # Writer 2 starts from writer 1's released data.
        assert kz2.read(ctx2, desc.rid, 5) == b"first"
        kz2.unlock(ctx2)

    def test_write_shared_merges_disjoint_writes(self, cluster):
        kz1, desc = make_region(cluster, node=1)
        kz1.write_at(desc.rid, b"................")
        kz2 = cluster.client(node=2)
        c1 = kz1.lock(desc.rid, 4096, LockMode.WRITE_SHARED)
        c2 = kz2.lock(desc.rid, 4096, LockMode.WRITE_SHARED)
        kz1.write(c1, desc.rid, b"AA")
        kz2.write(c2, desc.rid + 8, b"BB")
        kz1.unlock(c1)
        kz2.unlock(c2)
        cluster.run(1.0)
        merged = cluster.client(node=3).read_at(desc.rid, 16)
        assert merged[0:2] == b"AA"
        assert merged[8:10] == b"BB"

    def test_multi_replica_home_failover(self, cluster):
        kz1, desc = make_region(cluster, node=1, min_replicas=2)
        kz1.write_at(desc.rid, b"resilient")
        assert cluster.client(node=3).read_at(desc.rid, 9) == b"resilient"

    def test_secondary_home_naks_misrouted_update_push(self, cluster):
        """An UPDATE_PUSH *request* that lands on a node other than
        the primary home — exactly what the ordered request_home
        failover does when the primary looks dead — must be nak'd,
        not silently absorbed as a versionless replica update that
        leaves the writer hanging until its RPC timeout."""
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"v1")
        kz3 = cluster.client(node=3)
        assert kz3.read_at(desc.rid, 2) == b"v1"   # node 3 replicates
        assert desc.primary_home != 3

        replies = []
        cluster.network.attach(2, replies.append)
        cluster.network.send(Message(
            MessageType.UPDATE_PUSH, src=2, dst=3, request_id=4242,
            payload={"rid": desc.rid, "page": desc.rid,
                     "data": b"Z" * 4096, "release_token": False},
        ))
        cluster.run(1.0)
        # The tap also sees unrelated heartbeat traffic to node 2;
        # pick out the reply to our request.
        naks = [m for m in replies if m.reply_to == 4242]
        assert [m.msg_type for m in naks] == [MessageType.ERROR]
        assert naks[0].payload["code"] == "not_responsible"
        # The refused push never touched node 3's replica.
        assert kz3.read_at(desc.rid, 2) == b"v1"
