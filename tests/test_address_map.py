"""Unit tests for the address-map tree over an in-memory page store.

These exercise the tree logic (carving, splitting, coalescing,
lookups) without a cluster; integration through real daemons is
covered by tests/test_core_api.py and tests/test_location.py.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.address_map import (
    MAX_ENTRIES,
    ROOT_PAGE,
    SYSTEM_REGION,
    AddressMap,
    EntryState,
    MapEntry,
    MapIO,
    MapNode,
    initial_root_node,
)
from repro.core.addressing import AddressRange, DEFAULT_PAGE_SIZE, MAX_ADDRESS
from repro.core.errors import (
    AddressSpaceExhausted,
    AlreadyReserved,
    InvalidRange,
    NotReserved,
)
from repro.core.locks import LockMode
from repro.net.tasks import TaskRunner


class FakePageStore(MapIO):
    """MapIO over a plain dict; generators never actually block."""

    def __init__(self):
        self.page_size = DEFAULT_PAGE_SIZE
        self.pages = {ROOT_PAGE: initial_root_node().encode(self.page_size)}
        self.locks_taken = []

    def lock_page(self, page_addr, mode):
        self.locks_taken.append((page_addr, mode))
        return page_addr
        yield  # pragma: no cover

    def read_page(self, ctx, page_addr):
        return self.pages.get(page_addr, b"")
        yield  # pragma: no cover

    def write_page(self, ctx, page_addr, data):
        self.pages[page_addr] = data
        return None
        yield  # pragma: no cover

    def unlock_page(self, ctx):
        return None
        yield  # pragma: no cover


def run(gen):
    outcome = TaskRunner().spawn(gen)
    return outcome.result()


@pytest.fixture
def amap():
    return AddressMap(FakePageStore())


FREE_BASE = SYSTEM_REGION.end


class TestMapNode:
    def test_encode_decode_roundtrip(self):
        node = initial_root_node()
        clone = MapNode.decode(node.encode(DEFAULT_PAGE_SIZE))
        assert [e.to_wire() for e in clone.entries] == [
            e.to_wire() for e in node.entries
        ]
        assert clone.next_free_page == node.next_free_page

    def test_decode_empty_page(self):
        assert MapNode.decode(b"\x00" * 128).entries == []

    def test_entry_covering(self):
        node = initial_root_node()
        assert node.entry_covering(0).state is EntryState.RESERVED
        assert node.entry_covering(FREE_BASE).state is EntryState.FREE
        assert node.entry_covering(MAX_ADDRESS).state is EntryState.FREE

    def test_coalesce_free(self):
        node = MapNode(
            entries=[
                MapEntry(AddressRange(0, 100), EntryState.FREE),
                MapEntry(AddressRange(100, 100), EntryState.FREE),
                MapEntry(AddressRange(200, 100), EntryState.RESERVED, (1,)),
                MapEntry(AddressRange(300, 100), EntryState.FREE),
            ]
        )
        node.coalesce_free()
        assert len(node.entries) == 3
        assert node.entries[0].range == AddressRange(0, 200)


class TestLookupAndReserve:
    def test_initial_lookup(self, amap):
        entry = run(amap.lookup(0))
        assert entry.state is EntryState.RESERVED
        assert entry.home_nodes == (0,)
        assert run(amap.lookup(FREE_BASE)).state is EntryState.FREE

    def test_reserve_then_lookup(self, amap):
        target = AddressRange(FREE_BASE, 0x10000)
        run(amap.reserve(target, (3, 4)))
        entry = run(amap.lookup(FREE_BASE))
        assert entry.state is EntryState.RESERVED
        assert entry.range == target
        assert entry.home_nodes == (3, 4)

    def test_reserve_in_middle_splits_free(self, amap):
        target = AddressRange(FREE_BASE + 0x100000, 0x1000)
        run(amap.reserve(target, (1,)))
        assert run(amap.lookup(FREE_BASE)).state is EntryState.FREE
        assert run(amap.lookup(target.start)).state is EntryState.RESERVED
        assert run(amap.lookup(target.end)).state is EntryState.FREE

    def test_double_reserve_rejected(self, amap):
        target = AddressRange(FREE_BASE, 0x1000)
        run(amap.reserve(target, (1,)))
        with pytest.raises(AlreadyReserved):
            run(amap.reserve(target, (2,)))

    def test_straddling_reserve_rejected(self, amap):
        run(amap.reserve(AddressRange(FREE_BASE, 0x1000), (1,)))
        with pytest.raises((AlreadyReserved, InvalidRange)):
            run(amap.reserve(
                AddressRange(FREE_BASE + 0x800, 0x1000), (2,)
            ))

    def test_release_returns_to_free_and_coalesces(self, amap):
        target = AddressRange(FREE_BASE, 0x1000)
        run(amap.reserve(target, (1,)))
        run(amap.release(target))
        entry = run(amap.lookup(FREE_BASE))
        assert entry.state is EntryState.FREE
        # Coalesced back into the single huge free entry.
        assert entry.range.end == MAX_ADDRESS + 1

    def test_release_unreserved_rejected(self, amap):
        with pytest.raises(NotReserved):
            run(amap.release(AddressRange(FREE_BASE, 0x1000)))

    def test_update_homes(self, amap):
        target = AddressRange(FREE_BASE, 0x1000)
        run(amap.reserve(target, (1,)))
        run(amap.update_homes(target, (2, 5)))
        assert run(amap.lookup(FREE_BASE)).home_nodes == (2, 5)


class TestDelegation:
    def test_delegate_then_reserve_inside(self, amap):
        chunk = AddressRange(FREE_BASE, 1 << 30)
        run(amap.delegate(chunk, 7))
        entry = run(amap.lookup(FREE_BASE))
        assert entry.state is EntryState.DELEGATED
        assert entry.manager_node == 7
        inner = AddressRange(FREE_BASE + 0x4000, 0x1000)
        run(amap.reserve(inner, (7,)))
        assert run(amap.lookup(inner.start)).state is EntryState.RESERVED
        assert run(amap.lookup(FREE_BASE)).state is EntryState.DELEGATED

    def test_delegate_requires_free(self, amap):
        run(amap.reserve(AddressRange(FREE_BASE, 0x1000), (1,)))
        with pytest.raises(NotReserved):
            run(amap.delegate(AddressRange(FREE_BASE, 0x1000), 3))


class TestFindFree:
    def test_finds_aligned_extent(self, amap):
        found = run(amap.find_free(0x10000, alignment=0x10000))
        assert found.start % 0x10000 == 0
        assert found.length == 0x10000
        assert run(amap.lookup(found.start)).state is EntryState.FREE

    def test_skips_reserved(self, amap):
        run(amap.reserve(AddressRange(FREE_BASE, 0x1000), (1,)))
        found = run(amap.find_free(0x1000, alignment=0x1000))
        assert found.start >= FREE_BASE + 0x1000

    def test_exhaustion_raises(self, amap):
        # Ask for more than the entire address space.
        with pytest.raises((AddressSpaceExhausted, ValueError)):
            run(amap.find_free(MAX_ADDRESS + 1, alignment=1))


class TestSplitting:
    def test_node_splits_after_many_reserves(self, amap):
        for i in range(MAX_ENTRIES + 4):
            # Leave gaps so FREE fragments can't coalesce away.
            start = FREE_BASE + i * 0x10000
            run(amap.reserve(AddressRange(start, 0x4000), (i,)))
        root = MapNode.decode(amap.io.pages[ROOT_PAGE])
        assert any(e.state is EntryState.SUBTREE for e in root.entries)
        # Every reservation still resolves correctly through subtrees.
        for i in range(MAX_ENTRIES + 4):
            start = FREE_BASE + i * 0x10000
            entry = run(amap.lookup(start))
            assert entry.state is EntryState.RESERVED
            assert entry.home_nodes == (i,)

    def test_enumerate_reserved_spans_subtrees(self, amap):
        count = MAX_ENTRIES + 4
        for i in range(count):
            start = FREE_BASE + i * 0x10000
            run(amap.reserve(AddressRange(start, 0x4000), (i,)))
        reserved = run(amap.enumerate_reserved())
        # +1 for the system region itself.
        assert len(reserved) == count + 1


class TestMapProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200),
                st.integers(min_value=1, max_value=8),
                st.booleans(),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_partition_invariant(self, ops):
        """After arbitrary reserve/release sequences the tree still
        partitions the whole address space into disjoint entries."""
        amap = AddressMap(FakePageStore())
        live = {}
        for slot, pages, do_release in ops:
            start = FREE_BASE + slot * 0x10000
            rng = AddressRange(start, pages * DEFAULT_PAGE_SIZE)
            if do_release and start in live:
                run(amap.release(live.pop(start)))
            elif start not in live:
                overlapping = any(
                    rng.overlaps(other) for other in live.values()
                )
                if not overlapping:
                    run(amap.reserve(rng, (1,)))
                    live[start] = rng
        # Every live reservation resolves; released space is free.
        for start, rng in live.items():
            entry = run(amap.lookup(start))
            assert entry.state is EntryState.RESERVED
            assert entry.range == rng
        entries = run(amap.enumerate_reserved())
        assert len(entries) == len(live) + 1   # + system region
