"""Model-based property tests for the application layers: extent
files against a bytearray model, the name service against a dict."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import create_cluster
from repro.fs import KhazanaFileSystem
from repro.fs.layout import BLOCK_SIZE
from repro.naming import NameService, NamingError


# ---------------------------------------------------------------------------
# Extent files vs a bytearray
# ---------------------------------------------------------------------------

extent_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"),
                  st.integers(min_value=0, max_value=3 * BLOCK_SIZE),
                  st.binary(min_size=1, max_size=600)),
        st.tuples(st.just("truncate"),
                  st.integers(min_value=0, max_value=4 * BLOCK_SIZE)),
        st.tuples(st.just("read"),
                  st.integers(min_value=0, max_value=4 * BLOCK_SIZE),
                  st.integers(min_value=1, max_value=600)),
    ),
    min_size=1,
    max_size=10,
)


class TestExtentModel:
    @given(extent_ops)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_extent_file_matches_bytearray(self, ops):
        cluster = create_cluster(num_nodes=2)
        fs = KhazanaFileSystem.format(cluster.client(node=1))
        handle = fs.create("/model.bin", layout="extent")
        model = bytearray()
        for op in ops:
            if op[0] == "write":
                _k, offset, data = op
                end = offset + len(data)
                if end > len(model):
                    model.extend(b"\x00" * (end - len(model)))
                model[offset:end] = data
                handle.pwrite(offset, data)
            elif op[0] == "truncate":
                _k, size = op
                if size <= len(model):
                    model = model[:size]
                else:
                    model.extend(b"\x00" * (size - len(model)))
                handle.truncate(size)
            else:
                _k, offset, length = op
                expected = bytes(model[offset : offset + length])
                assert handle.pread(offset, length) == expected
        # Final content identical, including from the other node.
        other = KhazanaFileSystem.mount(
            cluster.client(node=0), fs.superblock_addr
        )
        with other.open("/model.bin") as f:
            assert f.read() == bytes(model)


# ---------------------------------------------------------------------------
# Name service vs a dict
# ---------------------------------------------------------------------------

NAMES = ["/a", "/b", "/ctx/x", "/ctx/y"]

naming_ops = st.lists(
    st.one_of(
        st.tuples(st.just("bind"), st.sampled_from(NAMES),
                  st.integers(min_value=0, max_value=99)),
        st.tuples(st.just("rebind"), st.sampled_from(NAMES),
                  st.integers(min_value=0, max_value=99)),
        st.tuples(st.just("unbind"), st.sampled_from(NAMES)),
        st.tuples(st.just("lookup"), st.sampled_from(NAMES)),
    ),
    min_size=1,
    max_size=14,
)


class TestNamingModel:
    @given(naming_ops)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_name_service_matches_dict(self, ops):
        from repro.core.attributes import ConsistencyLevel

        cluster = create_cluster(num_nodes=2)
        # STRICT so both attached services agree instantly.
        ns1 = NameService.create(
            cluster.client(node=1), consistency=ConsistencyLevel.STRICT
        )
        ns0 = NameService.attach(cluster.client(node=0), ns1.root_addr)
        services = [ns1, ns0]
        model = {}
        for index, op in enumerate(ops):
            ns = services[index % 2]
            kind, name = op[0], op[1]
            if kind == "bind":
                value = {"v": op[2]}
                if name in model:
                    with pytest.raises(NamingError):
                        ns.bind(name, value)
                else:
                    ns.bind(name, value)
                    model[name] = value
            elif kind == "rebind":
                value = {"v": op[2]}
                ns.rebind(name, value)
                model[name] = value
            elif kind == "unbind":
                if name in model:
                    ns.unbind(name)
                    del model[name]
                else:
                    with pytest.raises(NamingError):
                        ns.unbind(name)
            else:
                if name in model:
                    assert ns.lookup(name) == model[name]
                else:
                    with pytest.raises(NamingError):
                        ns.lookup(name)
        # Final agreement from both attach points.
        for name, value in model.items():
            assert ns0.lookup(name) == value
            assert ns1.lookup(name) == value
