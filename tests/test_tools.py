"""Tests for the fsck checker and inspection tools — and, through
them, whole-cluster invariant checks after a battery of operations."""

import pytest

from repro.api import create_cluster
from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.tools import (
    check_cluster,
    cluster_summary,
    engine_report,
    latency_report,
    placement_report,
    region_report,
    storage_report,
)


def exercised_cluster():
    """A cluster that has done a bit of everything."""
    cluster = create_cluster(num_nodes=4)
    kz1 = cluster.client(node=1)
    descs = []
    for level in ConsistencyLevel:
        desc = kz1.reserve(
            8192, RegionAttributes(consistency_level=level)
        )
        kz1.allocate(desc.rid)
        kz1.write_at(desc.rid, b"fsck-me")
        descs.append(desc)
    cluster.client(node=3).read_at(descs[0].rid, 7)
    cluster.client(node=2).write_at(descs[0].rid, b"updated")
    kz1.unreserve(descs[-1].rid)
    cluster.run(5.0)
    return cluster, descs


class TestFsck:
    def test_clean_cluster_passes(self):
        cluster, _descs = exercised_cluster()
        report = check_cluster(cluster)
        assert report.ok, report.render()
        assert report.checked_map_entries > 0
        assert report.checked_regions >= 2
        assert report.checked_pages >= 2

    def test_fresh_cluster_passes(self, cluster):
        report = check_cluster(cluster)
        assert report.ok, report.render()

    def test_detects_phantom_sharer(self):
        cluster, descs = exercised_cluster()
        entry = cluster.daemon(1).page_directory.get(descs[0].rid)
        entry.record_sharer(0)   # node 0 holds no copy: corruption
        report = check_cluster(cluster)
        assert not report.ok
        assert any("sharer" in e for e in report.errors)

    def test_detects_unmapped_homed_region(self):
        cluster, descs = exercised_cluster()
        daemon = cluster.daemon(1)
        ghost = descs[0].with_homes((1,))
        object.__setattr__(ghost, "range",
                           type(ghost.range)(0x900000000000, 4096))
        daemon.homed_regions[0x900000000000] = ghost
        report = check_cluster(cluster)
        assert not report.ok
        assert any("missing from the address map" in e
                   for e in report.errors)

    def test_detects_storage_miscount(self):
        cluster, _descs = exercised_cluster()
        cluster.daemon(2).storage.memory._used += 1   # corrupt counter
        report = check_cluster(cluster)
        assert not report.ok
        assert any("used_bytes" in e for e in report.errors)

    def test_survives_migration_and_failover(self):
        cluster = create_cluster(num_nodes=6)
        kz = cluster.client(node=1)
        desc = kz.reserve(4096, RegionAttributes(min_replicas=2))
        kz.allocate(desc.rid)
        kz.write_at(desc.rid, b"x")
        kz.migrate(desc.rid, 4)
        cluster.run(3.0)
        report = check_cluster(cluster)
        # Migration may leave stale map homes (warning), never errors.
        assert report.ok, report.render()

    def test_report_renders(self):
        cluster, _ = exercised_cluster()
        text = check_cluster(cluster).render()
        assert "fsck:" in text and "map entries" in text

    def test_strict_mode_passes_on_quiesced_cluster(self):
        cluster, _descs = exercised_cluster()
        report = check_cluster(cluster, strict=True)
        assert report.ok, report.render()

    def test_strict_mode_detects_unreachable_stored_page(self):
        cluster, descs = exercised_cluster()
        daemon = cluster.daemon(2)
        # A stored page with no page-directory entry can never be
        # invalidated or written back: strict-only corruption.
        daemon.page_directory.drop(descs[0].rid)
        report = check_cluster(cluster, strict=True)
        assert any("no page-directory entry" in e for e in report.errors)
        # The same cluster passes the non-strict checks.
        assert check_cluster(cluster).ok


class TestInspect:
    def test_cluster_summary(self):
        cluster, descs = exercised_cluster()
        summary = cluster_summary(cluster)
        assert summary["nodes"] == 4
        rids = {r["rid"] for r in summary["regions"]}
        assert descs[0].rid in rids
        assert descs[-1].rid not in rids   # unreserved region gone
        first = next(r for r in summary["regions"]
                     if r["rid"] == descs[0].rid)
        assert first["primary_home"] == 1
        assert 1 in first["cached_on"]

    def test_region_report_shows_copysets(self):
        cluster, descs = exercised_cluster()
        report = region_report(cluster, descs[0].rid)
        assert 1 in report["homes"]
        pages = report["pages"]
        assert descs[0].rid in pages
        # Node 2 wrote last, so the home's entry says node 2 owns it.
        assert pages[descs[0].rid][1]["owner"] == 2

    def test_latency_report(self):
        cluster, _ = exercised_cluster()
        rows = latency_report(cluster)
        assert len(rows) == 4
        # Node 1 homes the regions, so it answered remote requests.
        node1 = next(r for r in rows if r["node"] == 1)
        assert node1["ops"], "home node should have replied to requests"
        for op, rec in node1["ops"].items():
            assert rec["count"] > 0
            assert 0.0 <= rec["mean"] <= rec["max"]
        # The summary aggregate agrees on total counts per op.
        summary = cluster_summary(cluster)
        totals = {}
        for row in rows:
            for op, rec in row["ops"].items():
                totals[op] = totals.get(op, 0) + rec["count"]
        assert {op: rec["count"]
                for op, rec in summary["op_latency"].items()} == totals

    def test_storage_report(self):
        cluster, _ = exercised_cluster()
        rows = storage_report(cluster)
        assert len(rows) == 4
        node1 = next(r for r in rows if r["node"] == 1)
        assert node1["ram_used"] > 0
        assert node1["ram_used"] <= node1["ram_capacity"]

    def test_engine_report(self):
        cluster, _ = exercised_cluster()
        rows = engine_report(cluster)
        assert len(rows) == 4
        node1 = next(r for r in rows if r["node"] == 1)
        # Node 1 homes regions under every consistency level, so its
        # engines served home transactions.
        assert set(node1["protocols"]) >= {"crew", "release", "eventual"}
        assert all(
            set(counters) == {"home_transactions", "batch_fanouts",
                              "per_page_fallbacks", "rollbacks"}
            for counters in node1["protocols"].values()
        )
        total_home = sum(
            counters["home_transactions"]
            for row in rows
            for counters in row["protocols"].values()
        )
        assert total_home > 0


class TestPlacementReport:
    def test_summary_aggregates_tier_hit_rates(self):
        cluster, _ = exercised_cluster()
        summary = cluster_summary(cluster)
        assert summary["placement"] == "tiered"
        tiers = summary["lookup_tiers"]
        assert tiers.get("directory", 0) >= 1
        rates = summary["tier_hit_rates"]
        assert set(rates) == set(tiers)
        assert abs(sum(rates.values()) - 1.0) < 1e-9
        assert all(0.0 < r <= 1.0 for r in rates.values())

    def test_tiered_rows_name_the_manager(self):
        cluster, _ = exercised_cluster()
        report = placement_report(cluster)
        assert report["strategy"] == "tiered"
        assert set(report["nodes"]) == set(cluster.node_ids())
        assert report["nodes"][1]["manager_node"] == 0
        # Node 1 reserved every region, so it primary-homes them all.
        assert report["primary_homes"][1] >= 1
        # No ring, no spread.
        assert "ring_spread" not in report

    def test_ring_rows_show_membership_and_spread(self):
        from repro.core.daemon import DaemonConfig

        cluster = create_cluster(
            num_nodes=4, config=DaemonConfig(placement="ring")
        )
        kz1 = cluster.client(node=1)
        desc = kz1.reserve(4096)
        kz1.allocate(desc.rid)
        kz1.write_at(desc.rid, b"ring")
        cluster.client(node=3).read_at(desc.rid, 4)
        cluster.run(2.0)
        report = placement_report(cluster)
        assert report["strategy"] == "ring"
        assert report["alive_members"] == [0, 1, 2, 3]
        spread = report["ring_spread"]
        assert set(spread) == {0, 1, 2, 3}
        assert sum(spread.values()) > 0
        mean = sum(spread.values()) / len(spread)
        assert all(0.5 * mean <= n <= 1.6 * mean
                   for n in spread.values())
        # The ring tier shows up in the summary's aggregate rates.
        summary = cluster_summary(cluster)
        assert summary["placement"] == "ring"
        assert summary["lookup_tiers"].get("ring", 0) >= 1


class TestTokenLedgerInvariant:
    def test_leaked_grant_is_flagged(self):
        from repro.analysis.invariants import check_token_ledgers

        cluster, descs = exercised_cluster()
        daemons = [cluster.daemon(n) for n in cluster.node_ids()]
        assert check_token_ledgers(daemons) == []
        # Corrupt one ledger: record a holder without its mutex held.
        cm = cluster.daemon(1).consistency_manager("release")
        cm.engine.ledger._holders[descs[1].rid] = 3
        problems = check_token_ledgers(daemons)
        assert len(problems) == 1
        assert "mutex is not held" in problems[0]
        # fsck --strict surfaces the same corruption.
        report = check_cluster(cluster, strict=True)
        assert any("token" in e for e in report.errors)


class TestProtocolReport:
    def test_static_report_needs_no_cluster(self):
        from repro.tools import protocol_report

        doc = protocol_report()
        assert doc["findings"] == []
        assert sorted(doc["protocols"]) == [
            "crew", "eventual", "mobile", "release"
        ]
        crew = doc["protocols"]["crew"]
        assert crew["class"] == "CrewManager"
        assert crew["states"][0] == "INVALID"
        assert ["WRITE_GRANT", "EXCLUSIVE"] in crew["event_edges"]
        for invariant in crew["invariants"].values():
            assert invariant["proved"]
            assert invariant["trace"][0].startswith("KHZ202 proved")
