"""Tests for the schedule-space explorer (repro.analysis.explore)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.explore.controller import (
    Decision,
    FaultBudget,
    delivery_dst,
    delivery_link,
)
from repro.analysis.explore.points import (
    KIND_DELEGATE,
    KIND_SPAWN,
    KIND_TIMER,
    KIND_YIELD,
    CoverageMap,
    InterleavePoint,
    extract_points,
    instrumentation_map,
    normalize_path,
)
from repro.analysis.explore.runner import ExploreConfig, Explorer
from repro.analysis.explore.scenarios import PROTOCOLS, SCENARIOS
from repro.analysis.explore.strategies import (
    Choice,
    DFSStrategy,
    DelayBoundingStrategy,
    FaultAllowance,
    RandomStrategy,
    ReplayStrategy,
    independent,
)
from repro.analysis.lint import SourceFile


def _window(*links):
    """Labels for a window of deliveries over (src, dst) pairs."""
    return [
        f"deliver:lock_request:{src}->{dst}#{i}"
        for i, (src, dst) in enumerate(links)
    ]


class TestLabels:
    def test_delivery_dst_and_link(self):
        label = "deliver:lock_reply:2->0#7:r14"
        assert delivery_dst(label) == 0
        assert delivery_link(label) == (2, 0)

    def test_non_delivery_labels_opaque(self):
        assert delivery_dst("timer:retry") is None
        assert delivery_link("n1:cm-tick") is None

    def test_independence_is_destination_based(self):
        a, b, c = _window((1, 0), (2, 0), (1, 2))
        assert not independent(a, b)   # same destination: ordered
        assert independent(a, c)       # different destinations commute
        assert not independent(a, "timer:x")


class TestPoints:
    SOURCE = (
        "def handler(self, msg):\n"
        "    self.engine.spawn_handler(msg, serve(), 'op')\n"
        "    self.scheduler.call_later(1.0, tick)\n"
        "\n"
        "def serve():\n"
        "    reply = yield request()\n"
        "    data = yield from fetch(reply)\n"
        "    return data\n"
        "\n"
        "def stub():\n"
        "    return\n"
        "    yield  # pragma: no cover - generator form required\n"
    )

    def _points(self, path="src/repro/consistency/fixture.py"):
        return extract_points([SourceFile.parse(path, self.SOURCE)])

    def test_extracts_all_kinds(self):
        kinds = sorted(p.kind for p in self._points())
        assert kinds == sorted(
            [KIND_SPAWN, KIND_TIMER, KIND_YIELD, KIND_DELEGATE]
        )

    def test_no_cover_pragma_excludes_dead_yield(self):
        yields = [p for p in self._points() if p.kind == KIND_YIELD]
        assert len(yields) == 1
        assert yields[0].func == "serve"

    def test_paths_normalized_to_package(self):
        assert all(
            p.path == "repro/consistency/fixture.py"
            for p in self._points()
        )
        assert normalize_path("/abs/src/repro/net/sim.py") == (
            "repro/net/sim.py"
        )

    def test_instrumentation_map_counts(self):
        payload = instrumentation_map(self._points())
        assert payload["counts"] == {
            KIND_SPAWN: 1, KIND_TIMER: 1, KIND_YIELD: 1, KIND_DELEGATE: 1
        }
        assert all("line" in p for p in payload["points"])

    def test_coverage_map_separates_delegates(self):
        coverage = CoverageMap(self._points())
        assert len(coverage.points) == 1
        assert len(coverage.delegates) == 1
        # A suspension observed on the bare-yield line counts as a hit;
        # one on the delegation line is tallied separately.
        coverage.observe("src/repro/consistency/fixture.py", 6, "t")
        coverage.observe("src/repro/consistency/fixture.py", 7, "t")
        report = coverage.report()
        assert (report.hit, report.total) == (1, 1)
        assert (report.delegate_hit, report.delegate_total) == (1, 1)
        assert report.missing == []
        assert "100.0%" in report.render()

    def test_coverage_scope_excludes_other_layers(self):
        coverage = CoverageMap(self._points("src/repro/net/fixture.py"))
        assert coverage.points == []


class TestDFSStrategy:
    def test_first_run_is_default_schedule(self):
        dfs = DFSStrategy()
        assert dfs.begin_run(0)
        window = _window((1, 0), (2, 0))
        assert dfs.choose(0, window, FaultAllowance()) == Choice(0)

    def test_backtracks_through_alternatives_then_exhausts(self):
        dfs = DFSStrategy()
        window = _window((1, 0), (2, 0))   # dependent: both into node 0
        seen = []
        for run in range(4):
            if not dfs.begin_run(run):
                break
            seen.append(dfs.choose(0, list(window), FaultAllowance()).index)
            dfs.end_run()
        assert seen == [0, 1]
        assert dfs.exhausted

    def test_sleep_sets_prune_commuting_pairs(self):
        # Two deliveries into different nodes commute: after exploring
        # (a, b), the sleep set suppresses the mirrored (b, a) order.
        a, b = _window((1, 0), (1, 2))

        def run(dfs):
            first = dfs.choose(0, [a, b], FaultAllowance()).index
            rest = [a, b][:first] + [a, b][first + 1:]
            second = dfs.choose(1, rest, FaultAllowance()).index
            return (first, second)

        dfs = DFSStrategy()
        orders = []
        for run_index in range(4):
            if not dfs.begin_run(run_index):
                break
            orders.append(run(dfs))
            dfs.end_run()
        assert len(orders) < 4   # strictly fewer runs than the full tree

    def test_prefix_divergence_discards_stale_subtree(self):
        dfs = DFSStrategy()
        dfs.begin_run(0)
        dfs.choose(0, _window((1, 0), (2, 0)), FaultAllowance())
        dfs.end_run()
        dfs.begin_run(1)
        # Same step, different window: the stale node must not replay.
        choice = dfs.choose(0, _window((2, 0), (1, 0)), FaultAllowance())
        assert choice == Choice(0)


class TestRandomizedStrategies:
    def test_run_zero_is_pure_default(self):
        for strategy in (RandomStrategy(7), DelayBoundingStrategy(7)):
            strategy.begin_run(0)
            window = _window((1, 0), (2, 1), (0, 2))
            for step in range(5):
                assert strategy.choose(
                    step, window, FaultAllowance()
                ) == Choice(0)

    def test_random_runs_are_seed_deterministic(self):
        window = _window((1, 0), (2, 1), (0, 2))

        def trace(seed):
            strategy = RandomStrategy(seed)
            strategy.begin_run(3)
            return [
                strategy.choose(step, window, FaultAllowance()).index
                for step in range(20)
            ]

        assert trace(5) == trace(5)

    def test_loss_fault_respects_budget(self):
        strategy = RandomStrategy(1, loss_prob=1.0)
        strategy.begin_run(1)
        window = _window((1, 0), (2, 1))
        empty = FaultAllowance()          # no budget: never a fault
        assert strategy.choose(0, window, empty).fault is None
        funded = FaultAllowance(loss=1)
        assert strategy.choose(1, window, funded).fault == {"kind": "loss"}

    def test_delay_bound_caps_deviations(self):
        strategy = DelayBoundingStrategy(2, bound=1, delay_prob=1.0)
        strategy.begin_run(1)
        window = _window((1, 0), (2, 0))
        picks = [
            strategy.choose(step, window, FaultAllowance()).index
            for step in range(4)
        ]
        assert picks[0] == 1          # one deviation...
        assert picks[1:] == [0, 0, 0]  # ...then default for the run


class TestReplayStrategy:
    def test_replays_recorded_indices_and_defaults_past_end(self):
        window = _window((1, 0), (2, 0))
        decisions = [Decision(0, window[1], list(window))]
        strategy = ReplayStrategy(decisions)
        assert strategy.choose(0, window, FaultAllowance()).index == 1
        assert strategy.choose(1, window, FaultAllowance()) == Choice(0)
        assert strategy.divergences == []

    def test_window_mismatch_recorded_not_fatal(self):
        decisions = [Decision(0, "deliver:x:9->9#0", ["deliver:x:9->9#0"])]
        strategy = ReplayStrategy(decisions)
        choice = strategy.choose(0, _window((1, 0)), FaultAllowance())
        assert choice.index == 0
        assert strategy.divergences


class TestDecisionJson:
    def test_round_trip(self):
        decision = Decision(
            3, "deliver:a:1->0#2", ["deliver:a:1->0#2", "deliver:b:2->0#0"],
            fault={"kind": "loss"},
        )
        assert Decision.from_json(decision.to_json()) == decision


class TestExplorer:
    def test_rejects_unknown_scenario(self):
        with pytest.raises(ValueError):
            Explorer(ExploreConfig(protocol="crew", scenario="nope"))

    def test_matrix_is_complete(self):
        assert set(PROTOCOLS) == {"crew", "release", "eventual", "mobile"}
        assert len(SCENARIOS) >= 5

    def test_default_schedule_single_page_clean(self):
        explorer = Explorer(
            ExploreConfig(protocol="crew", scenario="single_page",
                          num_nodes=2)
        )
        result = explorer.explore(RandomStrategy(0), budget=1)
        assert result.clean
        assert result.runs == 1

    def test_perturbed_schedules_stay_clean(self):
        explorer = Explorer(
            ExploreConfig(protocol="release", scenario="single_page",
                          num_nodes=2)
        )
        result = explorer.explore(RandomStrategy(0), budget=3)
        assert result.clean
        assert result.decision_points > 0

    def test_coverage_observed_during_runs(self):
        source = SourceFile.parse(
            "src/repro/consistency/release.py",
            open("src/repro/consistency/release.py").read(),
        )
        coverage = CoverageMap(extract_points([source]))
        explorer = Explorer(
            ExploreConfig(protocol="release", scenario="single_page",
                          num_nodes=2),
            coverage=coverage,
        )
        assert explorer.explore(RandomStrategy(0), budget=1).clean
        assert coverage.report().hit > 0


class TestMutationProof:
    """The acceptance gate: a re-introduced historical bug is caught
    within budget, the shrunk schedule file replays deterministically."""

    def _explore(self):
        explorer = Explorer(
            ExploreConfig(
                protocol="release", scenario="conflicting_writers",
                num_nodes=2, mutations=("early-mutex-release",),
            )
        )
        result = explorer.explore(RandomStrategy(0), budget=2000)
        return explorer, result

    def test_early_mutex_release_caught_and_replayable(self):
        explorer, result = self._explore()
        assert result.schedule is not None, (
            "mutation survived the schedule budget"
        )
        schedule = result.schedule
        assert schedule["violation"]["rule"] == "token-conservation"
        assert schedule["mutations"] == ["early-mutex-release"]
        json.dumps(schedule)   # must be a writable artifact

        decisions = [Decision.from_json(d) for d in schedule["decisions"]]
        for _ in range(2):     # deterministic: replays twice identically
            outcome = explorer.replay(decisions)
            assert outcome.violation is not None
            assert outcome.violation.rule == "token-conservation"

    def test_unmutated_run_is_clean_in_same_budget(self):
        explorer = Explorer(
            ExploreConfig(protocol="release", scenario="conflicting_writers",
                          num_nodes=2)
        )
        assert explorer.explore(RandomStrategy(0), budget=3).clean


class TestFaultInjection:
    def test_budgeted_loss_does_not_break_single_page(self):
        explorer = Explorer(
            ExploreConfig(protocol="crew", scenario="single_page",
                          num_nodes=2, faults=FaultBudget(loss=1))
        )
        result = explorer.explore(
            RandomStrategy(0, loss_prob=0.5), budget=3
        )
        assert result.clean


class CrashyStrategy(RandomStrategy):
    """RandomStrategy plus budgeted crash/partition faults — the
    shapes the ring's membership machinery exists to absorb."""

    def __init__(self, seed: int, fault_prob: float = 0.15) -> None:
        super().__init__(seed)
        self.fault_prob = fault_prob

    def choose(self, step, labels, budget):
        choice = super().choose(step, labels, budget)
        if self._run > 0 and choice.fault is None:
            if budget.allows("crash") \
                    and self._rng.random() < self.fault_prob:
                return Choice(choice.index, {"kind": "crash"})
            if budget.allows("partition") \
                    and self._rng.random() < self.fault_prob:
                return Choice(choice.index, {"kind": "partition"})
        return choice


class TestRingExploration:
    """The ring placement backend under the explorer: reordered
    schedules and budgeted crash/partition faults stay green."""

    def test_perturbed_ring_schedules_stay_clean(self):
        explorer = Explorer(
            ExploreConfig(protocol="crew", scenario="single_page",
                          num_nodes=2, placement="ring")
        )
        result = explorer.explore(RandomStrategy(0), budget=3)
        assert result.clean
        assert result.decision_points > 0

    def test_ring_survives_crash_and_partition_budgets(self):
        explorer = Explorer(
            ExploreConfig(protocol="release", scenario="single_page",
                          num_nodes=3, placement="ring",
                          faults=FaultBudget(crash=1, partition=1))
        )
        result = explorer.explore(CrashyStrategy(0), budget=4)
        assert result.clean

    def test_schedule_dict_records_placement(self):
        from repro.analysis.races import Violation

        explorer = Explorer(
            ExploreConfig(protocol="crew", scenario="single_page",
                          num_nodes=2, placement="ring")
        )
        schedule = explorer.schedule_dict(
            [], Violation(rule="x", detail="y"), RandomStrategy(0)
        )
        assert schedule["placement"] == "ring"
