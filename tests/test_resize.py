"""Tests for in-place region resizing.

Paper Section 4.1 names the capability: "An alternative would be for
the filesystem to allocate each file into a single contiguous region,
which would require the filesystem to resize the region whenever the
file size changes."
"""

import pytest

from repro.api import create_cluster
from repro.core.attributes import RegionAttributes
from repro.core.errors import (
    AddressSpaceExhausted,
    InvalidRange,
    RegionInUse,
)
from repro.core.locks import LockMode


@pytest.fixture
def region(cluster):
    kz = cluster.client(node=1)
    desc = kz.reserve(2 * 4096)
    kz.allocate(desc.rid)
    kz.write_at(desc.rid, b"head")
    return kz, desc


class TestGrow:
    def test_grow_in_place(self, cluster, region):
        kz, desc = region
        bigger = kz.resize(desc.rid, 5 * 4096)
        assert bigger.range.length == 5 * 4096
        assert bigger.range.start == desc.range.start
        assert bigger.version > desc.version
        # New tail pages are allocated and usable immediately.
        kz.write_at(desc.rid + 4 * 4096, b"tail")
        assert kz.read_at(desc.rid + 4 * 4096, 4) == b"tail"
        assert kz.read_at(desc.rid, 4) == b"head"

    def test_grow_rounds_to_pages(self, cluster, region):
        kz, desc = region
        bigger = kz.resize(desc.rid, 2 * 4096 + 1)
        assert bigger.range.length == 3 * 4096

    def test_grow_blocked_by_neighbour(self, cluster):
        kz = cluster.client(node=1)
        first = kz.reserve(4096)
        second = kz.reserve(4096)
        # The pool carves sequentially: second sits right after first.
        assert second.range.start == first.range.end
        kz.allocate(first.rid)
        with pytest.raises(AddressSpaceExhausted):
            kz.resize(first.rid, 2 * 4096)

    def test_remote_nodes_see_grown_region(self, cluster, region):
        kz, desc = region
        kz.resize(desc.rid, 4 * 4096)
        kz.write_at(desc.rid + 3 * 4096, b"far")
        remote = cluster.client(node=3)
        assert remote.read_at(desc.rid + 3 * 4096, 3) == b"far"


class TestShrink:
    def test_shrink_frees_tail(self, cluster, region):
        kz, desc = region
        kz.write_at(desc.rid + 4096, b"tail")
        smaller = kz.resize(desc.rid, 4096)
        assert smaller.range.length == 4096
        cluster.run(2.0)
        # The tail page is gone; the head survives.
        assert kz.read_at(desc.rid, 4) == b"head"
        from repro.core.errors import KhazanaError

        with pytest.raises(KhazanaError):
            kz.read_at(desc.rid + 4096, 4)

    def test_shrink_then_regrow(self, cluster, region):
        kz, desc = region
        kz.resize(desc.rid, 4096)
        cluster.run(2.0)
        regrown = kz.resize(desc.rid, 3 * 4096)
        assert regrown.range.length == 3 * 4096
        kz.write_at(desc.rid + 2 * 4096, b"back")
        assert kz.read_at(desc.rid + 2 * 4096, 4) == b"back"


class TestGuards:
    def test_same_size_is_noop(self, cluster, region):
        kz, desc = region
        same = kz.resize(desc.rid, 2 * 4096)
        assert same.range == desc.range

    def test_zero_size_rejected(self, cluster, region):
        kz, desc = region
        with pytest.raises(InvalidRange):
            kz.resize(desc.rid, 0)

    def test_interior_address_rejected(self, cluster, region):
        kz, desc = region
        with pytest.raises(InvalidRange):
            kz.resize(desc.rid + 4096, 4 * 4096)

    def test_resize_with_live_lock_rejected(self, cluster, region):
        kz, desc = region
        ctx = kz.lock(desc.rid, 4096, LockMode.READ)
        with pytest.raises(RegionInUse):
            kz.resize(desc.rid, 4 * 4096)
        kz.unlock(ctx)

    def test_fsck_clean_after_resizes(self, cluster, region):
        from repro.tools import check_cluster

        kz, desc = region
        kz.resize(desc.rid, 6 * 4096)
        kz.resize(desc.rid, 3 * 4096)
        cluster.run(3.0)
        report = check_cluster(cluster)
        assert report.ok, report.render()
