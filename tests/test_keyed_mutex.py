"""Unit tests for the per-key FIFO mutex used by home-side directory
transactions."""

from repro.consistency.manager import KeyedMutex


class TestKeyedMutex:
    def test_uncontended_acquire_immediate(self):
        mutex = KeyedMutex()
        assert mutex.acquire("k").done
        assert mutex.locked("k")
        mutex.release("k")
        assert not mutex.locked("k")

    def test_fifo_ordering(self):
        mutex = KeyedMutex()
        order = []
        first = mutex.acquire("k")
        second = mutex.acquire("k")
        third = mutex.acquire("k")
        second.add_callback(lambda _: order.append("second"))
        third.add_callback(lambda _: order.append("third"))
        assert first.done and not second.done and not third.done
        mutex.release("k")
        assert order == ["second"]
        mutex.release("k")
        assert order == ["second", "third"]

    def test_keys_independent(self):
        mutex = KeyedMutex()
        assert mutex.acquire("a").done
        assert mutex.acquire("b").done
        blocked = mutex.acquire("a")
        assert not blocked.done

    def test_reentrant_release_chain(self):
        """Regression: a waiter's callback that itself releases the
        mutex must not corrupt the wait queue (the next holder runs
        synchronously inside release())."""
        mutex = KeyedMutex()
        completed = []

        def critical_section(tag):
            def on_granted(_future):
                completed.append(tag)
                mutex.release("k")   # re-enters release from within

            return on_granted

        first = mutex.acquire("k")
        for tag in ("b", "c", "d"):
            mutex.acquire("k").add_callback(critical_section(tag))
        # Releasing the first holder cascades through every waiter.
        mutex.release("k")
        assert completed == ["b", "c", "d"]
        assert not mutex.locked("k")
        # The mutex is reusable afterwards.
        assert mutex.acquire("k").done
