"""Tests for the static protocol verifier (repro.analysis.protocol).

Each KHZ20x rule is exercised against a mini-tree fixture under
``tests/fixtures/protocol`` (kept as ``.py.txt`` so linting ``tests/``
does not pick them up); every fixture is a self-contained CM base +
subclass + router, seeded with exactly the defect the rule must
catch, alongside the clean spellings.  The tree tests then run the
real CLI over ``src/`` — once clean (the CI gate) and once with the
seeded drop-transition mutation (the negated self-check that proves
the verifier can see) — and pin the KHZ202 proof traces and SARIF
shape the acceptance criteria ask for.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import sources
from repro.analysis.protocol import verify
from repro.analysis.protocol.__main__ import main
from repro.analysis.protocol.coverage import (
    coverage_table,
    edge_report,
    total_coverage,
    uncovered_skeletons,
)
from repro.analysis.protocol.report import render_json, render_text
from repro.analysis.sources import SourceFile

FIXTURES = Path(__file__).parent / "fixtures" / "protocol"


def _verify_fixture(name: str):
    source = (FIXTURES / f"{name}.py.txt").read_text(encoding="utf-8")
    fake = f"src/repro/consistency/fixture_{name}.py"
    return verify([SourceFile.parse(fake, source)])


class TestModelExtraction:
    def test_clean_fixture_recovers_the_automaton(self):
        _findings, models, _proofs = _verify_fixture("clean")
        assert [m.protocol for m in models] == ["good"]
        model = models[0]
        assert model.class_name == "GoodManager"
        assert model.declared_events == {"READ_FILL": "SHARED"}
        assert model.reachable_states == ["INVALID", "SHARED"]
        assert model.extraction_errors == []

    def test_clean_fixture_verifies_clean(self):
        findings, _models, proofs = _verify_fixture("clean")
        assert findings == []
        assert all(p.holds for p in proofs)
        # Both invariants discharge vacuously: no EXCLUSIVE state,
        # no write-token traffic.
        trace = "\n".join(line for p in proofs for line in p.render())
        assert "vacuously single-writer" in trace
        assert "vacuously conserved" in trace


class TestTransitionCompleteness:
    """KHZ201 over the seeded-defect fixtures."""

    def test_silent_absorbs_flag_but_annotated_one_does_not(self):
        findings, _models, _proofs = _verify_fixture("absorb")
        assert [f.rule for f in findings] == ["KHZ201"] * 2
        request, one_way = sorted(findings, key=lambda f: f.line)
        # The request handler never answers: sender blocks forever.
        assert "FETCH_REQUEST is absorbed" in request.message
        assert "no reply and no nak" in request.message
        # The one-way handler has no observable effect at all.
        assert "SHARER_HINT is silently dropped" in one_way.message
        # handle_quiet is identical but carries allow-absorb: quiet.
        assert "QUIET_HINT" not in " ".join(f.message for f in findings)

    def test_client_side_undeclared_event_flags(self):
        findings, _models, _proofs = _verify_fixture("undeclared")
        undeclared = [f for f in findings if f.rule == "KHZ201"]
        assert len(undeclared) == 1
        assert "PageEvent.WRITEBACK_COPY" in undeclared[0].message
        assert "KeyError at runtime" in undeclared[0].message

    def test_dead_table_entry_flags_unreachable(self):
        findings, models, _proofs = _verify_fixture("unreachable")
        assert [f.rule for f in findings] == ["KHZ201"]
        assert "PageEvent.INVALIDATE" in findings[0].message
        assert "no client or handler path ever fires" in findings[0].message
        # The finding anchors to the dead table entry itself.
        dead = [t for t in models[0].transitions
                if t.event == "INVALIDATE"]
        assert findings[0].line == dead[0].line

    def test_sending_a_type_your_own_side_naks_flags(self):
        findings, _models, _proofs = _verify_fixture("self_nak")
        assert [f.rule for f in findings] == ["KHZ201"]
        assert "MessageType.TOKEN_FETCH" in findings[0].message
        assert "base nak-only default" in findings[0].message
        assert "never succeed" in findings[0].message

    def test_unresolvable_fire_event_flags_once(self):
        findings, _models, _proofs = _verify_fixture("dynamic")
        assert [f.rule for f in findings] == ["KHZ201"]
        assert "cannot statically resolve" in findings[0].message


class TestEngineContract:
    """KHZ203: handlers may not step outside the declared table."""

    def test_handler_firing_undeclared_event_flags(self):
        findings, _models, _proofs = _verify_fixture("undeclared")
        contract = [f for f in findings if f.rule == "KHZ203"]
        assert len(contract) == 1
        assert "handle_inval()" in contract[0].message
        assert "PageEvent.INVALIDATE" in contract[0].message
        assert "undeclared state change" in contract[0].message


class TestInvariantProofs:
    """KHZ202: discharged obligations render; failures become findings."""

    def test_unguarded_write_grant_fails_the_proof(self):
        findings, _models, proofs = _verify_fixture("unguarded")
        single = [p for p in proofs if "single-writer" in p.invariant]
        assert len(single) == 1 and not single[0].holds
        trace = "\n".join(single[0].render())
        assert "KHZ202 FAILED: reckless" in trace
        assert "NO guard" in trace
        assert "invariant NOT proved" in trace
        khz202 = [f for f in findings if f.rule == "KHZ202"]
        # Two failed obligations: the unguarded site and the missing
        # revocation path.
        assert len(khz202) == 2
        messages = " ".join(f.message for f in khz202)
        assert "serialization guard" in messages
        assert "revocation" in messages

    def test_discharged_proof_renders_a_qed(self):
        _findings, _models, proofs = _verify_fixture("clean")
        for proof in proofs:
            lines = proof.render()
            assert lines[0].startswith("KHZ202 proved:")
            assert lines[-1] == "  ∎"


class TestCoverageModel:
    """KHZ204 helpers: edge lists, coverage math, skeletons."""

    def _model(self):
        _findings, models, _proofs = _verify_fixture("unreachable")
        return models[0]   # hoarder: READ_FILL + INVALIDATE declared

    def test_edge_report_diffs_exercised_traces(self):
        model = self._model()
        exercised = {"hoarder": {("INVALID", "READ_FILL")}}
        report = edge_report([model], exercised)
        doc = report["hoarder"]
        assert doc["event_edges"] == [["READ_FILL", "SHARED"],
                                      ["INVALIDATE", "INVALID"]]
        assert doc["covered_events"] == ["READ_FILL"]
        assert doc["uncovered_events"] == ["INVALIDATE"]
        assert doc["coverage"] == 0.5
        assert total_coverage(report) == 0.5

    def test_product_edges_cover_every_reachable_source(self):
        report = edge_report([self._model()])
        doc = report["hoarder"]
        # fire() is total per event: 2 reachable states x 2 events.
        assert len(doc["product_edges"]) == 4
        assert ["SHARED", "INVALIDATE", "INVALID"] in doc["product_edges"]

    def test_uncovered_edges_become_pytest_skeletons(self):
        model = self._model()
        skeletons = uncovered_skeletons(
            [model], {"hoarder": {("INVALID", "READ_FILL")}}
        )
        assert len(skeletons) == 1
        assert "PageEvent.INVALIDATE" in skeletons[0]
        assert "NotImplementedError" in skeletons[0]
        assert "def test_invalidate_reaches_invalid" in skeletons[0]

    def test_coverage_table_shape(self):
        model = self._model()
        table = coverage_table(
            edge_report([model], {"hoarder": {("INVALID", "READ_FILL")}})
        )
        assert "Automaton edge coverage" in table
        assert "hoarder" in table and "50%" in table
        assert table.splitlines()[-1].startswith("total: 50%")


@pytest.fixture(scope="module")
def tree():
    files = sources.collect(["src/"])
    findings, models, proofs = verify(files)
    return files, findings, models, proofs


class TestRealTree:
    """The shipped four protocols must verify clean — the CI gate."""

    def test_shipped_tree_is_clean(self, tree):
        _files, findings, _models, _proofs = tree
        assert findings == []

    def test_all_four_automata_extract(self, tree):
        _files, _findings, models, _proofs = tree
        by_name = {m.protocol: m for m in models}
        assert sorted(by_name) == ["crew", "eventual", "mobile",
                                   "release"]
        assert len(by_name["crew"].transitions) == 5
        assert len(by_name["release"].transitions) == 2
        assert len(by_name["eventual"].transitions) == 1
        assert len(by_name["mobile"].transitions) == 2
        assert by_name["crew"].declared_events["WRITE_GRANT"] == \
            "EXCLUSIVE"

    def test_every_invariant_is_proved(self, tree):
        _files, _findings, _models, proofs = tree
        assert len(proofs) == 8   # 2 invariants x 4 protocols
        assert all(p.holds for p in proofs)
        trace = "\n".join(line for p in proofs
                          for line in p.render())
        # crew's single-writer proof names its serialization evidence
        # and the revocation authority.
        assert "KHZ202 proved: crew — CREW single-writer" in trace
        assert "claim_for_writer" in trace
        # release's token conservation walks the ledger counter.
        assert "ledger.grant" in trace and "ledger.acquire" in trace

    def test_text_report_carries_models_and_summary(self, tree):
        files, findings, models, proofs = tree
        text = render_text(findings, models, proofs, len(files))
        assert "crew (CrewManager): states" in text
        assert "WRITE_GRANT->EXCLUSIVE" in text
        assert text.splitlines()[-1].startswith(
            "repro.analysis.protocol:"
        )

    def test_sarif_report_shape(self, tree):
        files, findings, models, proofs = tree
        doc = json.loads(render_json(findings, models, proofs,
                                     len(files)))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rules = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rules == ["KHZ201", "KHZ202", "KHZ203", "KHZ204"]
        assert run["results"] == []
        automata = run["properties"]["automata"]
        assert sorted(automata) == ["crew", "eventual", "mobile",
                                    "release"]
        assert automata["crew"]["states"][0] == "INVALID"
        proofs_doc = run["properties"]["proofs"]
        assert all(entry["holds"] for entry in proofs_doc.values())


class TestCli:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "protocol-report.json"
        edges = tmp_path / "edges.json"
        code = main(["src/", "--format", "json", "--out", str(out),
                     "--edges-out", str(edges)])
        assert code == 0
        capsys.readouterr()
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["runs"][0]["results"] == []
        edge_doc = json.loads(edges.read_text(encoding="utf-8"))
        assert sorted(edge_doc) == ["crew", "eventual", "mobile",
                                    "release"]

    def test_drop_transition_mutation_is_caught(self, capsys):
        # The negated CI self-check: deleting crew's INVALIDATE entry
        # must blind nothing — the routed invalidation handlers still
        # fire the event, so the verifier must fail the run.
        code = main(["src/", "--mutate", "drop-transition"])
        captured = capsys.readouterr()
        assert code == 1
        assert "KHZ203" in captured.out
        assert "undeclared state change" in captured.out

    def test_unknown_mutation_needle_is_fatal(self):
        from repro.analysis.protocol.__main__ import _apply_mutation

        files = [SourceFile.parse("src/repro/consistency/crew.py",
                                  "x = 1\n")]
        with pytest.raises(SystemExit, match="mutation target moved"):
            _apply_mutation(files, "drop-transition")
