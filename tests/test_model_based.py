"""Model-based property tests.

Two oracles:

- **KFS vs. a dict model** — random file-system operation sequences
  applied both to KFS (on a real multi-node cluster, alternating
  between two mounts) and to an in-memory model; observable behaviour
  must match exactly.
- **CREW vs. a register model** — random read/write interleavings from
  all nodes against one page; CREW promises sequential consistency, so
  in this serialized-client setting every read must return the most
  recently completed write.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import create_cluster
from repro.fs import FileSystemError, KhazanaFileSystem

# ---------------------------------------------------------------------------
# KFS vs dict model
# ---------------------------------------------------------------------------

NAMES = ["a", "b", "c"]

fs_ops = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.sampled_from(NAMES)),
        st.tuples(st.just("write"), st.sampled_from(NAMES),
                  st.binary(min_size=1, max_size=64)),
        st.tuples(st.just("append"), st.sampled_from(NAMES),
                  st.binary(min_size=1, max_size=32)),
        st.tuples(st.just("read"), st.sampled_from(NAMES)),
        st.tuples(st.just("unlink"), st.sampled_from(NAMES)),
        st.tuples(st.just("rename"), st.sampled_from(NAMES),
                  st.sampled_from(NAMES)),
        st.tuples(st.just("listdir")),
    ),
    min_size=1,
    max_size=12,
)


class FsModel:
    """The oracle: a plain dict of path -> bytes."""

    def __init__(self):
        self.files = {}

    def apply(self, op):
        kind = op[0]
        if kind == "create":
            name = op[1]
            if name in self.files:
                return "error"
            self.files[name] = b""
            return "ok"
        if kind == "write":
            _k, name, data = op
            if name not in self.files:
                return "error"
            self.files[name] = data
            return "ok"
        if kind == "append":
            _k, name, data = op
            if name not in self.files:
                return "error"
            self.files[name] += data
            return "ok"
        if kind == "read":
            name = op[1]
            if name not in self.files:
                return "error"
            return self.files[name]
        if kind == "unlink":
            name = op[1]
            if name not in self.files:
                return "error"
            del self.files[name]
            return "ok"
        if kind == "rename":
            _k, src, dst = op
            if src not in self.files:
                return "error"
            if src == dst:
                return "ok"
            if dst in self.files:
                return "error"
            self.files[dst] = self.files.pop(src)
            return "ok"
        if kind == "listdir":
            return sorted(self.files)
        raise AssertionError(op)


def apply_to_kfs(fs, op):
    kind = op[0]
    try:
        if kind == "create":
            fs.create(f"/{op[1]}").close()
            return "ok"
        if kind == "write":
            with fs.open(f"/{op[1]}", "r"):
                pass   # existence check mirroring the model
            with fs.open(f"/{op[1]}", "w") as f:
                f.write(op[2])
            return "ok"
        if kind == "append":
            fs._namei(f"/{op[1]}")   # must already exist
            with fs.open(f"/{op[1]}", "a") as f:
                f.write(op[2])
            return "ok"
        if kind == "read":
            with fs.open(f"/{op[1]}") as f:
                return f.read()
        if kind == "unlink":
            fs.unlink(f"/{op[1]}")
            return "ok"
        if kind == "rename":
            src, dst = op[1], op[2]
            if src == dst:
                fs._namei(f"/{src}")
                return "ok"
            if fs.exists(f"/{dst}"):
                return "error"
            fs.rename(f"/{src}", f"/{dst}")
            return "ok"
        if kind == "listdir":
            return fs.listdir("/")
    except FileSystemError:
        return "error"
    raise AssertionError(op)


class TestFsModel:
    @given(fs_ops)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_kfs_matches_dict_model(self, ops):
        cluster = create_cluster(num_nodes=2)
        fs1 = KhazanaFileSystem.format(cluster.client(node=1))
        fs0 = KhazanaFileSystem.mount(cluster.client(node=0),
                                      fs1.superblock_addr)
        mounts = [fs1, fs0]
        model = FsModel()
        for index, op in enumerate(ops):
            fs = mounts[index % 2]   # alternate between the two sites
            expected = model.apply(op)
            actual = apply_to_kfs(fs, op)
            assert actual == expected, (op, expected, actual)
        # Final state agrees from both mounts.
        assert fs1.listdir("/") == sorted(model.files)
        assert fs0.listdir("/") == sorted(model.files)
        for name, body in model.files.items():
            with fs0.open(f"/{name}") as f:
                assert f.read() == body


# ---------------------------------------------------------------------------
# CREW vs register model
# ---------------------------------------------------------------------------

register_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),   # acting node
        st.sampled_from(["read", "write"]),
    ),
    min_size=4,
    max_size=24,
)


class TestCrewRegisterModel:
    @given(register_ops)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_sequentially_consistent_register(self, ops):
        cluster = create_cluster(num_nodes=4)
        owner = cluster.client(node=1)
        region = owner.reserve(4096)
        owner.allocate(region.rid)
        owner.write_at(region.rid, b"gen-0000")
        last_written = 0
        generation = 0
        for node, kind in ops:
            session = cluster.client(node=node)
            if kind == "write":
                generation += 1
                session.write_at(region.rid, f"gen-{generation:04d}".encode())
                last_written = generation
            else:
                got = session.read_at(region.rid, 8)
                assert got == f"gen-{last_written:04d}".encode(), (
                    f"node {node} read {got!r}, expected generation "
                    f"{last_written}"
                )
