"""Tests for futures and generator-based protocol tasks."""

import pytest

from repro.net.tasks import (
    Future,
    FutureError,
    TaskRunner,
    failed,
    gather,
    gather_settled,
    resolved,
)


class TestFuture:
    def test_result_roundtrip(self):
        f = Future("t")
        f.set_result(42)
        assert f.done and not f.failed
        assert f.result() == 42

    def test_exception_roundtrip(self):
        f = Future("t")
        f.set_exception(ValueError("boom"))
        assert f.failed
        with pytest.raises(ValueError):
            f.result()

    def test_double_resolve_rejected(self):
        f = Future("t")
        f.set_result(1)
        with pytest.raises(FutureError):
            f.set_result(2)
        with pytest.raises(FutureError):
            f.set_exception(RuntimeError())

    def test_premature_result_rejected(self):
        with pytest.raises(FutureError):
            Future("t").result()

    def test_callback_after_resolution_fires_immediately(self):
        f = resolved(7)
        seen = []
        f.add_callback(lambda fut: seen.append(fut.result()))
        assert seen == [7]

    def test_callbacks_fire_once_in_order(self):
        f = Future("t")
        seen = []
        f.add_callback(lambda _: seen.append(1))
        f.add_callback(lambda _: seen.append(2))
        f.set_result(None)
        assert seen == [1, 2]

    def test_helpers(self):
        assert resolved("x").result() == "x"
        assert isinstance(failed(KeyError("k")).exception(), KeyError)


class TestGather:
    def test_empty(self):
        assert gather([]).result() == []

    def test_collects_in_order(self):
        futures = [Future(str(i)) for i in range(3)]
        combined = gather(futures)
        futures[2].set_result("c")
        futures[0].set_result("a")
        assert not combined.done
        futures[1].set_result("b")
        assert combined.result() == ["a", "b", "c"]

    def test_first_failure_wins(self):
        futures = [Future(str(i)) for i in range(2)]
        combined = gather(futures)
        futures[1].set_exception(RuntimeError("x"))
        assert combined.failed
        futures[0].set_result("late")   # must not blow up

    def test_settled_never_fails(self):
        futures = [Future("a"), Future("b")]
        combined = gather_settled(futures)
        futures[0].set_exception(RuntimeError("x"))
        futures[1].set_result(5)
        outcomes = combined.result()
        assert outcomes[0][0] is False
        assert isinstance(outcomes[0][1], RuntimeError)
        assert outcomes[1] == (True, 5)


class TestTaskRunner:
    def test_plain_return(self):
        runner = TaskRunner()

        def task():
            return 42
            yield  # pragma: no cover - makes this a generator

        outcome = runner.spawn(task())
        assert outcome.result() == 42
        assert runner.active == 0

    def test_yield_resumes_with_result(self):
        runner = TaskRunner()
        gate = Future("gate")

        def task():
            value = yield gate
            return value + 1

        outcome = runner.spawn(task())
        assert not outcome.done
        assert runner.active == 1
        gate.set_result(10)
        assert outcome.result() == 11

    def test_exception_thrown_into_task(self):
        runner = TaskRunner()
        gate = Future("gate")

        def task():
            try:
                yield gate
            except ValueError:
                return "caught"
            return "missed"

        outcome = runner.spawn(task())
        gate.set_exception(ValueError("boom"))
        assert outcome.result() == "caught"

    def test_uncaught_exception_fails_future(self):
        runner = TaskRunner()

        def task():
            raise KeyError("k")
            yield  # pragma: no cover

        outcome = runner.spawn(task())
        assert isinstance(outcome.exception(), KeyError)

    def test_yield_from_composition(self):
        runner = TaskRunner()
        gates = [Future("a"), Future("b")]

        def inner(gate):
            value = yield gate
            return value * 2

        def outer():
            first = yield from inner(gates[0])
            second = yield from inner(gates[1])
            return first + second

        outcome = runner.spawn(outer())
        gates[0].set_result(3)
        gates[1].set_result(4)
        assert outcome.result() == 14

    def test_non_future_yield_is_error(self):
        runner = TaskRunner()

        def task():
            yield 42

        outcome = runner.spawn(task())
        assert isinstance(outcome.exception(), TypeError)

    def test_many_chained_tasks(self):
        runner = TaskRunner()
        gate = Future("gate")

        def task(n):
            value = yield gate
            return value + n

        outcomes = [runner.spawn(task(i)) for i in range(50)]
        gate.set_result(100)
        assert [o.result() for o in outcomes] == [100 + i for i in range(50)]
