"""Tests for futures and generator-based protocol tasks."""

import logging

import pytest

from repro.net.tasks import (
    Future,
    FutureError,
    TaskRunner,
    failed,
    gather,
    gather_settled,
    resolved,
)


class TestFuture:
    def test_result_roundtrip(self):
        f = Future("t")
        f.set_result(42)
        assert f.done and not f.failed
        assert f.result() == 42

    def test_exception_roundtrip(self):
        f = Future("t")
        f.set_exception(ValueError("boom"))
        assert f.failed
        with pytest.raises(ValueError):
            f.result()

    def test_double_resolve_rejected(self):
        f = Future("t")
        f.set_result(1)
        with pytest.raises(FutureError):
            f.set_result(2)
        with pytest.raises(FutureError):
            f.set_exception(RuntimeError())

    def test_premature_result_rejected(self):
        with pytest.raises(FutureError):
            Future("t").result()

    def test_callback_after_resolution_fires_immediately(self):
        f = resolved(7)
        seen = []
        f.add_callback(lambda fut: seen.append(fut.result()))
        assert seen == [7]

    def test_callbacks_fire_once_in_order(self):
        f = Future("t")
        seen = []
        f.add_callback(lambda _: seen.append(1))
        f.add_callback(lambda _: seen.append(2))
        f.set_result(None)
        assert seen == [1, 2]

    def test_helpers(self):
        assert resolved("x").result() == "x"
        assert isinstance(failed(KeyError("k")).exception(), KeyError)


class TestCallbackIsolation:
    """A raising callback must not strand the other waiters."""

    def test_later_callbacks_still_run_after_a_failure(self, caplog):
        f = Future("t")
        seen = []

        def boom(_):
            raise RuntimeError("boom")

        f.add_callback(lambda _: seen.append("first"))
        f.add_callback(boom)
        f.add_callback(lambda _: seen.append("last"))
        with caplog.at_level(logging.ERROR, logger="repro.net.tasks"):
            with pytest.raises(RuntimeError, match="boom"):
                f.set_result(None)
        assert seen == ["first", "last"]
        assert "stranded" in caplog.text

    def test_multiple_failures_aggregate_into_a_group(self):
        f = Future("t")

        def boom_a(_):
            raise RuntimeError("a")

        def boom_b(_):
            raise KeyError("b")

        survived = []
        f.add_callback(boom_a)
        f.add_callback(survived.append)
        f.add_callback(boom_b)
        with pytest.raises(BaseExceptionGroup) as info:
            f.set_result(None)
        assert len(info.value.exceptions) == 2
        assert survived == [f]   # the clean waiter between them ran

    def test_raising_task_resumption_is_isolated(self):
        # Two tasks park on one gate; the first blows up *while being
        # resumed*.  The second must still resume and finish.
        runner = TaskRunner()
        gate = Future("gate")

        def angry():
            yield gate
            raise ValueError("post-resume failure")

        def calm():
            value = yield gate
            return value

        class Hostile(BaseException):
            pass

        angry_outcome = runner.spawn(angry())
        calm_outcome = runner.spawn(calm())
        # A third, bare callback raises straight out of _fire; the two
        # task resumptions queued before it must already have run.
        gate.add_callback(
            lambda _: (_ for _ in ()).throw(Hostile())
        )
        with pytest.raises(Hostile):
            gate.set_result(9)
        assert isinstance(angry_outcome.exception(), ValueError)
        assert calm_outcome.result() == 9
        assert runner.active == 0


class TestGatherLateFailures:
    def test_dropped_late_exception_is_logged(self, caplog):
        futures = [Future("a"), Future("b")]
        combined = gather(futures, label="fanout")
        futures[0].set_exception(RuntimeError("first"))
        assert combined.failed
        with caplog.at_level(logging.WARNING, logger="repro.net.tasks"):
            futures[1].set_exception(KeyError("late"))
        assert "dropping exception" in caplog.text
        assert "fanout" in caplog.text
        # The combined future still reports only the first failure.
        assert isinstance(combined.exception(), RuntimeError)

    def test_late_success_is_silent(self, caplog):
        futures = [Future("a"), Future("b")]
        gather(futures)
        futures[0].set_exception(RuntimeError("first"))
        with caplog.at_level(logging.WARNING, logger="repro.net.tasks"):
            futures[1].set_result("fine")
        assert "dropping exception" not in caplog.text


class TestGather:
    def test_empty(self):
        assert gather([]).result() == []

    def test_collects_in_order(self):
        futures = [Future(str(i)) for i in range(3)]
        combined = gather(futures)
        futures[2].set_result("c")
        futures[0].set_result("a")
        assert not combined.done
        futures[1].set_result("b")
        assert combined.result() == ["a", "b", "c"]

    def test_first_failure_wins(self):
        futures = [Future(str(i)) for i in range(2)]
        combined = gather(futures)
        futures[1].set_exception(RuntimeError("x"))
        assert combined.failed
        futures[0].set_result("late")   # must not blow up

    def test_settled_never_fails(self):
        futures = [Future("a"), Future("b")]
        combined = gather_settled(futures)
        futures[0].set_exception(RuntimeError("x"))
        futures[1].set_result(5)
        outcomes = combined.result()
        assert outcomes[0][0] is False
        assert isinstance(outcomes[0][1], RuntimeError)
        assert outcomes[1] == (True, 5)


class TestTaskRunner:
    def test_plain_return(self):
        runner = TaskRunner()

        def task():
            return 42
            yield  # pragma: no cover - makes this a generator

        outcome = runner.spawn(task())
        assert outcome.result() == 42
        assert runner.active == 0

    def test_yield_resumes_with_result(self):
        runner = TaskRunner()
        gate = Future("gate")

        def task():
            value = yield gate
            return value + 1

        outcome = runner.spawn(task())
        assert not outcome.done
        assert runner.active == 1
        gate.set_result(10)
        assert outcome.result() == 11

    def test_exception_thrown_into_task(self):
        runner = TaskRunner()
        gate = Future("gate")

        def task():
            try:
                yield gate
            except ValueError:
                return "caught"
            return "missed"

        outcome = runner.spawn(task())
        gate.set_exception(ValueError("boom"))
        assert outcome.result() == "caught"

    def test_uncaught_exception_fails_future(self):
        runner = TaskRunner()

        def task():
            raise KeyError("k")
            yield  # pragma: no cover

        outcome = runner.spawn(task())
        assert isinstance(outcome.exception(), KeyError)

    def test_yield_from_composition(self):
        runner = TaskRunner()
        gates = [Future("a"), Future("b")]

        def inner(gate):
            value = yield gate
            return value * 2

        def outer():
            first = yield from inner(gates[0])
            second = yield from inner(gates[1])
            return first + second

        outcome = runner.spawn(outer())
        gates[0].set_result(3)
        gates[1].set_result(4)
        assert outcome.result() == 14

    def test_non_future_yield_is_error(self):
        runner = TaskRunner()

        def task():
            yield 42

        outcome = runner.spawn(task())
        assert isinstance(outcome.exception(), TypeError)

    def test_many_chained_tasks(self):
        runner = TaskRunner()
        gate = Future("gate")

        def task(n):
            value = yield gate
            return value + n

        outcomes = [runner.spawn(task(i)) for i in range(50)]
        gate.set_result(100)
        assert [o.result() for o in outcomes] == [100 + i for i in range(50)]
