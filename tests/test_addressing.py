"""Unit and property tests for the 128-bit address space."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.addressing import (
    DEFAULT_PAGE_SIZE,
    MAX_ADDRESS,
    AddressRange,
    check_address,
    format_address,
    is_valid_page_size,
)

# Keep generated ranges in a manageable sub-space; the arithmetic is
# identical across the full 128 bits.
addrs = st.integers(min_value=0, max_value=1 << 40)
lengths = st.integers(min_value=1, max_value=1 << 20)


def r(start: int, length: int) -> AddressRange:
    return AddressRange(start, length)


class TestCheckAddress:
    def test_accepts_bounds(self):
        assert check_address(0) == 0
        assert check_address(MAX_ADDRESS) == MAX_ADDRESS

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_address(-1)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            check_address(MAX_ADDRESS + 1)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_address(True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_address(1.5)


class TestFormatAddress:
    def test_groups_of_eight(self):
        assert format_address(0) == "00000000:00000000:00000000:00000000"

    def test_value_roundtrip(self):
        addr = 0xDEADBEEF_CAFEBABE
        assert int(format_address(addr).replace(":", ""), 16) == addr


class TestPageSizes:
    def test_default_valid(self):
        assert is_valid_page_size(DEFAULT_PAGE_SIZE)

    def test_larger_powers(self):
        assert is_valid_page_size(16 * 1024)
        assert is_valid_page_size(64 * 1024)

    def test_non_power_invalid(self):
        assert not is_valid_page_size(5000)

    def test_too_small_invalid(self):
        assert not is_valid_page_size(2048)


class TestAddressRange:
    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            AddressRange(0, 0)

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            AddressRange(0, -4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            AddressRange(MAX_ADDRESS, 2)

    def test_end_and_last(self):
        rng = r(100, 50)
        assert rng.end == 150
        assert rng.last == 149

    def test_contains_boundaries(self):
        rng = r(100, 50)
        assert rng.contains(100)
        assert rng.contains(149)
        assert not rng.contains(150)
        assert not rng.contains(99)

    def test_contains_range(self):
        assert r(0, 100).contains_range(r(10, 20))
        assert r(0, 100).contains_range(r(0, 100))
        assert not r(0, 100).contains_range(r(90, 20))

    def test_overlap_adjacent_is_false(self):
        assert not r(0, 10).overlaps(r(10, 10))
        assert r(0, 10).adjacent_to(r(10, 10))

    def test_intersection(self):
        assert r(0, 100).intersection(r(50, 100)) == r(50, 50)
        assert r(0, 10).intersection(r(20, 10)) is None

    def test_union_of_adjacent(self):
        assert r(0, 10).union(r(10, 10)) == r(0, 20)

    def test_union_disjoint_raises(self):
        with pytest.raises(ValueError):
            r(0, 10).union(r(20, 10))

    def test_subtract_middle_splits(self):
        pieces = r(0, 100).subtract(r(40, 20))
        assert pieces == [r(0, 40), AddressRange.from_bounds(60, 100)]

    def test_subtract_disjoint_returns_self(self):
        assert r(0, 10).subtract(r(50, 10)) == [r(0, 10)]

    def test_subtract_covering_returns_empty(self):
        assert r(10, 10).subtract(r(0, 100)) == []

    def test_split_at(self):
        left, right = r(0, 100).split_at(30)
        assert left == r(0, 30)
        assert right == r(30, 70)

    def test_split_at_boundary_raises(self):
        with pytest.raises(ValueError):
            r(0, 100).split_at(0)
        with pytest.raises(ValueError):
            r(0, 100).split_at(100)


class TestPageArithmetic:
    def test_aligned_detection(self):
        assert r(0, 8192).page_aligned(4096)
        assert not r(100, 8192).page_aligned(4096)

    def test_align_to_pages_expands(self):
        aligned = r(100, 100).align_to_pages(4096)
        assert aligned == r(0, 4096)

    def test_pages_enumeration(self):
        assert list(r(0, 3 * 4096).pages(4096)) == [0, 4096, 8192]

    def test_pages_for_unaligned_range(self):
        assert list(r(4000, 200).pages(4096)) == [0, 4096]

    def test_page_count(self):
        assert r(0, 4096).page_count(4096) == 1
        assert r(1, 4096).page_count(4096) == 2


class TestRangeProperties:
    @given(addrs, lengths, addrs, lengths)
    @settings(max_examples=200)
    def test_intersection_symmetric(self, s1, l1, s2, l2):
        a, b = r(s1, l1), r(s2, l2)
        assert a.intersection(b) == b.intersection(a)

    @given(addrs, lengths, addrs, lengths)
    @settings(max_examples=200)
    def test_subtract_disjoint_from_original(self, s1, l1, s2, l2):
        a, b = r(s1, l1), r(s2, l2)
        for piece in a.subtract(b):
            assert a.contains_range(piece)
            assert not piece.overlaps(b)

    @given(addrs, lengths, addrs, lengths)
    @settings(max_examples=200)
    def test_subtract_conserves_length(self, s1, l1, s2, l2):
        a, b = r(s1, l1), r(s2, l2)
        inter = a.intersection(b)
        removed = inter.length if inter else 0
        assert sum(p.length for p in a.subtract(b)) == a.length - removed

    @given(addrs, lengths, st.sampled_from([4096, 8192, 65536]))
    @settings(max_examples=200)
    def test_alignment_covers_original(self, start, length, page):
        a = r(start, length)
        aligned = a.align_to_pages(page)
        assert aligned.page_aligned(page)
        assert aligned.contains_range(a)
        assert aligned.length - a.length < 2 * page

    @given(addrs, st.integers(min_value=2, max_value=1 << 20))
    @settings(max_examples=100)
    def test_split_reassembles(self, start, length):
        a = r(start, length)
        mid = start + length // 2
        if start < mid < a.end:
            left, right = a.split_at(mid)
            assert left.union(right) == a
