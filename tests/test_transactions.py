"""Tests for atomic multi-object operations (the Section 4.2 veneer's
transactional behaviour)."""

import pytest

from repro.api import create_cluster
from repro.objects import (
    KhazanaObject,
    ObjectError,
    ObjectRuntime,
    atomically,
    register_class,
)


@register_class
class TxnAccount(KhazanaObject):
    @staticmethod
    def initial_state():
        return {"balance": 0}

    def deposit(self, state, amount):
        state["balance"] += amount
        return state["balance"]

    def balance_of(self, state):
        return state["balance"]


def setup_accounts(cluster, node=1, balances=(100, 20)):
    rt = ObjectRuntime(cluster.client(node=node))
    refs = []
    for balance in balances:
        ref = rt.export(TxnAccount, state={"balance": balance})
        refs.append(ref)
    return rt, refs


class TestAtomically:
    def test_transfer_commits_both_sides(self, cluster):
        rt, (a, b) = setup_accounts(cluster)

        def transfer(view):
            view.state(a)["balance"] -= 30
            view.state(b)["balance"] += 30
            return "moved"

        assert atomically(rt, [a, b], transfer) == "moved"
        assert rt.proxy(a).balance_of() == 70
        assert rt.proxy(b).balance_of() == 50

    def test_body_exception_aborts_everything(self, cluster):
        rt, (a, b) = setup_accounts(cluster)

        def bad(view):
            view.state(a)["balance"] -= 30
            raise ValueError("changed my mind")

        with pytest.raises(ValueError):
            atomically(rt, [a, b], bad)
        # Neither object changed: the debit never committed.
        assert rt.proxy(a).balance_of() == 100
        assert rt.proxy(b).balance_of() == 20

    def test_view_call_invokes_methods_in_txn(self, cluster):
        rt, (a, b) = setup_accounts(cluster)

        def double_deposit(view):
            view.call(a, "deposit", 5)
            view.call(b, "deposit", 7)

        atomically(rt, [a, b], double_deposit)
        assert rt.proxy(a).balance_of() == 105
        assert rt.proxy(b).balance_of() == 27

    def test_unenlisted_object_rejected(self, cluster):
        rt, (a, b) = setup_accounts(cluster)

        def sneaky(view):
            view.state(b)["balance"] += 1

        with pytest.raises(ObjectError):
            atomically(rt, [a], sneaky)

    def test_empty_refs_rejected(self, cluster):
        rt, _refs = setup_accounts(cluster)
        with pytest.raises(ObjectError):
            atomically(rt, [], lambda view: None)

    def test_duplicate_refs_collapse(self, cluster):
        rt, (a, _b) = setup_accounts(cluster)

        def bump(view):
            view.state(a)["balance"] += 1

        atomically(rt, [a, a, a], bump)
        assert rt.proxy(a).balance_of() == 101

    def test_cross_node_transactions_serialize(self, cluster):
        """Two runtimes transacting over the same pair of objects
        (in opposite orders) both commit; ordered locking prevents
        deadlock and CREW serialises the outcomes."""
        rt1, (a, b) = setup_accounts(cluster)
        rt2 = ObjectRuntime(cluster.client(node=3))

        def move_a_to_b(view):
            view.state(a)["balance"] -= 10
            view.state(b)["balance"] += 10

        def move_b_to_a(view):
            view.state(b)["balance"] -= 5
            view.state(a)["balance"] += 5

        for _ in range(3):
            atomically(rt1, [a, b], move_a_to_b)
            atomically(rt2, [b, a], move_b_to_a)
        total = rt1.proxy(a).balance_of() + rt1.proxy(b).balance_of()
        assert total == 120   # conservation: no lost or phantom money
        assert rt2.proxy(a).balance_of() == 100 - 30 + 15

    def test_result_passthrough(self, cluster):
        rt, (a, _b) = setup_accounts(cluster)
        result = atomically(rt, [a], lambda view: view.state(a)["balance"])
        assert result == 100
