"""Shared fixtures for the Khazana test suite."""

from __future__ import annotations

import pytest

from repro.api import Cluster, create_cluster
from repro.core.daemon import DaemonConfig


@pytest.fixture
def cluster() -> Cluster:
    """A 4-node LAN cluster (node 0 is cluster manager + bootstrap)."""
    return create_cluster(num_nodes=4)


@pytest.fixture
def big_cluster() -> Cluster:
    """An 8-node LAN cluster for replication/failure tests."""
    return create_cluster(num_nodes=8)


@pytest.fixture
def wan_cluster() -> Cluster:
    """A 4-node WAN cluster."""
    return create_cluster(num_nodes=4, topology="wan")


@pytest.fixture
def quiet_cluster() -> Cluster:
    """A 4-node cluster without background failure handling, for tests
    that count messages exactly."""
    config = DaemonConfig(enable_failure_handling=False)
    return create_cluster(num_nodes=4, config=config)
