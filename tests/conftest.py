"""Shared fixtures for the Khazana test suite.

Setting ``KHAZANA_DETECT_RACES=1`` in the environment runs every
fixture-built cluster with the dynamic race detector enabled
(``DaemonConfig.detect_races``) and fails any test whose cluster
recorded a violation — the CI "consistency pass with the detector on".
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.api import Cluster, create_cluster
from repro.core.daemon import DaemonConfig

DETECT_RACES = os.environ.get("KHAZANA_DETECT_RACES", "") not in ("", "0")


def _make_cluster(**kwargs) -> Cluster:
    if DETECT_RACES:
        config = kwargs.pop("config", None) or DaemonConfig()
        kwargs["config"] = replace(config, detect_races=True)
    return create_cluster(**kwargs)


@pytest.fixture
def _race_check():
    """Yields a list the cluster fixtures append to; violations found
    by any attached detector fail the test at teardown."""
    clusters: list = []
    yield clusters
    if not DETECT_RACES:
        return
    problems = []
    for cluster in clusters:
        detector = cluster.race_detector
        if detector is not None and detector.violations:
            # Live violations only: final_check() is skipped because
            # crash/partition tests legitimately leave pins behind.
            problems.extend(v.render() for v in detector.violations)
    assert not problems, "race detector flagged:\n" + "\n".join(problems)


@pytest.fixture
def cluster(_race_check) -> Cluster:
    """A 4-node LAN cluster (node 0 is cluster manager + bootstrap)."""
    built = _make_cluster(num_nodes=4)
    _race_check.append(built)
    return built


@pytest.fixture
def big_cluster(_race_check) -> Cluster:
    """An 8-node LAN cluster for replication/failure tests."""
    built = _make_cluster(num_nodes=8)
    _race_check.append(built)
    return built


@pytest.fixture
def wan_cluster(_race_check) -> Cluster:
    """A 4-node WAN cluster."""
    built = _make_cluster(num_nodes=4, topology="wan")
    _race_check.append(built)
    return built


@pytest.fixture
def quiet_cluster(_race_check) -> Cluster:
    """A 4-node cluster without background failure handling, for tests
    that count messages exactly."""
    config = DaemonConfig(enable_failure_handling=False)
    built = _make_cluster(num_nodes=4, config=config)
    _race_check.append(built)
    return built
