"""Direct unit tests for the twin/diff machinery (consistency/diffs.py)."""

from repro.consistency.diffs import TwinStore, apply_diff, compute_diff

PAGE = 4096


class TestComputeDiff:
    def test_identical_pages_yield_empty_diff(self):
        page = bytes(range(256)) * 16
        assert compute_diff(page, page) == []

    def test_fully_changed_page_is_one_run(self):
        twin = b"\x00" * PAGE
        current = b"\xff" * PAGE
        assert compute_diff(twin, current) == [(0, current)]

    def test_interleaved_runs(self):
        twin = bytearray(b"\x00" * 16)
        current = bytearray(twin)
        current[2:4] = b"ab"
        current[7:8] = b"c"
        current[12:15] = b"def"
        assert compute_diff(bytes(twin), bytes(current)) == [
            (2, b"ab"),
            (7, b"c"),
            (12, b"def"),
        ]

    def test_run_reaching_end_of_page(self):
        twin = b"\x00" * 8
        current = b"\x00" * 6 + b"zz"
        assert compute_diff(twin, current) == [(6, b"zz")]

    def test_mismatched_length_base_falls_back_to_full_copy(self):
        twin = b"\x00" * 8
        current = b"grown beyond the twin"
        assert compute_diff(twin, current) == [(0, current)]

    def test_identical_object_short_circuits_without_scanning(self):
        class Unscannable(bytes):
            def __eq__(self, other):   # any comparison means we scanned
                raise AssertionError("aliased twin must not be scanned")

            __hash__ = bytes.__hash__

        page = Unscannable(b"\x00" * PAGE)
        assert compute_diff(page, page) == []

    def test_accepts_memoryview_inputs(self):
        twin = bytes(16)
        current = bytearray(twin)
        current[4:6] = b"mv"
        diff = compute_diff(memoryview(twin), memoryview(bytes(current)))
        assert diff == [(4, b"mv")]


class TestApplyDiff:
    def test_empty_diff_is_identity(self):
        base = b"unchanged"
        assert apply_diff(base, []) == base

    def test_roundtrip_recovers_current(self):
        twin = bytes(range(256)) * 4
        current = bytearray(twin)
        current[0:3] = b"xyz"
        current[100:104] = b"\x00\x00\x00\x00"
        current[1020:1024] = b"tail"
        diff = compute_diff(twin, bytes(current))
        assert apply_diff(twin, diff) == bytes(current)

    def test_non_overlapping_diffs_merge(self):
        # Two writers diff against the same twin; both survive (Munin).
        twin = b"\x00" * 16
        a = compute_diff(twin, b"AA" + twin[2:])
        b = compute_diff(twin, twin[:14] + b"BB")
        merged = apply_diff(apply_diff(twin, a), b)
        assert merged == b"AA" + b"\x00" * 12 + b"BB"

    def test_run_past_end_extends_base(self):
        assert apply_diff(b"abcd", [(6, b"zz")]) == b"abcd\x00\x00zz"

    def test_result_is_a_fresh_bytearray_the_caller_owns(self):
        base = bytearray(b"\x00" * 8)
        patched = apply_diff(base, [(0, b"hi")])
        assert isinstance(patched, bytearray)
        patched[2:4] = b"!!"   # mutating the result...
        assert base == b"\x00" * 8   # ...never touches the base


class _FakePage:
    def __init__(self, data):
        self.data = data


class _FakeStorage:
    def __init__(self, pages):
        self._pages = pages

    def peek(self, page_addr):
        return self._pages.get(page_addr)


class TestTwinStore:
    def test_pop_returns_remembered_twin_once(self):
        twins = TwinStore()
        twins.remember(1, 0x1000, b"twin")
        assert twins.pop(1, 0x1000) == b"twin"
        assert twins.pop(1, 0x1000) is None

    def test_twins_are_scoped_per_context(self):
        twins = TwinStore()
        twins.remember(1, 0x1000, b"ctx-1")
        twins.remember(2, 0x1000, b"ctx-2")
        assert twins.pop(2, 0x1000) == b"ctx-2"
        assert twins.pop(1, 0x1000) == b"ctx-1"

    def test_diff_update_builds_update_item(self):
        twins = TwinStore()
        twins.remember(7, 0x2000, b"\x00" * 8)
        storage = _FakeStorage({0x2000: _FakePage(b"\x00\x00ab\x00\x00\x00\x00")})
        update = twins.diff_update(storage, 7, 0x2000)
        assert update == {
            "page": 0x2000,
            "diff": [(2, b"ab")],
            "release_token": False,
        }

    def test_diff_update_none_without_twin(self):
        twins = TwinStore()
        storage = _FakeStorage({0x2000: _FakePage(b"data")})
        assert twins.diff_update(storage, 7, 0x2000) is None

    def test_diff_update_none_when_page_vanished(self):
        twins = TwinStore()
        twins.remember(7, 0x2000, b"twin")
        assert twins.diff_update(_FakeStorage({}), 7, 0x2000) is None

    def test_diff_update_none_when_nothing_changed(self):
        twins = TwinStore()
        twins.remember(7, 0x2000, b"same")
        storage = _FakeStorage({0x2000: _FakePage(b"same")})
        assert twins.diff_update(storage, 7, 0x2000) is None

    def test_diff_update_skips_aliased_twin_without_comparing(self):
        # remember() aliases the stored buffer (frozen-buffer
        # invariant); if the write cycle never replaced it, the
        # release proves the page untouched by identity alone.
        class Unscannable(bytes):
            def __eq__(self, other):
                raise AssertionError("aliased twin must not be scanned")

            __hash__ = bytes.__hash__

        buffer = Unscannable(b"\x00" * 4096)
        twins = TwinStore()
        twins.remember(7, 0x2000, buffer)
        storage = _FakeStorage({0x2000: _FakePage(buffer)})
        assert twins.diff_update(storage, 7, 0x2000) is None
        assert twins.pop(7, 0x2000) is None   # twin was consumed

    def test_remember_aliases_rather_than_copies(self):
        twins = TwinStore()
        buffer = b"z" * 4096
        twins.remember(1, 0x1000, buffer)
        assert twins.pop(1, 0x1000) is buffer
