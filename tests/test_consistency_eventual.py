"""Tests for the bounded-staleness protocol (paper Section 3.3's
planned relaxed model for web caches and query engines)."""

import pytest

from repro.consistency.eventual import DEFAULT_STALENESS_BOUND
from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.net.message import Message, MessageType


def make_region(cluster, node=1, size=4096, **kwargs):
    kz = cluster.client(node=node)
    attrs = RegionAttributes(
        consistency_level=ConsistencyLevel.EVENTUAL, **kwargs
    )
    desc = kz.reserve(size, attrs)
    kz.allocate(desc.rid)
    return kz, desc


class TestStaleness:
    def test_fresh_replica_served_without_messages(self, cluster):
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"cached")
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 6)
        before = cluster.stats.snapshot()
        kz3.read_at(desc.rid, 6)   # within the staleness bound
        delta = cluster.stats.delta_since(before)
        assert delta.count(MessageType.PAGE_FETCH) == 0

    def test_stale_replica_refreshed_after_bound(self, cluster):
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"v1")
        kz3 = cluster.client(node=3)
        assert kz3.read_at(desc.rid, 2) == b"v1"
        kz1.write_at(desc.rid, b"v2")
        # Do NOT run long enough for anti-entropy fanout... instead
        # exceed the staleness bound so the next read refreshes.
        cluster.run(DEFAULT_STALENESS_BOUND + 0.1)
        assert kz3.read_at(desc.rid, 2) == b"v2"

    def test_reads_can_be_stale_within_bound(self, cluster):
        """The whole point: 'data that is temporarily out-of-date ...
        as long as they get fast response'."""
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"v1")
        kz3 = cluster.client(node=3)
        assert kz3.read_at(desc.rid, 2) == b"v1"
        kz1.write_at(desc.rid, b"v2")
        # Immediately after the remote write, the replica may serve v1.
        got = kz3.read_at(desc.rid, 2)
        assert got in (b"v1", b"v2")

    def test_anti_entropy_converges_replicas(self, cluster):
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"v1")
        readers = [cluster.client(node=n) for n in (0, 2, 3)]
        for reader in readers:
            reader.read_at(desc.rid, 2)   # everyone replicates
        kz1.write_at(desc.rid, b"v9")
        cluster.run(5.0)   # several anti-entropy ticks
        for node in (0, 2, 3):
            page = cluster.daemon(node).storage.peek(desc.rid)
            assert page is not None and page.data[:2] == b"v9"


class TestConflicts:
    def test_last_writer_wins_convergence(self, cluster):
        kz1, desc = make_region(cluster, node=1)
        kz2 = cluster.client(node=2)
        kz1.write_at(desc.rid, b"from-1")
        kz2.write_at(desc.rid, b"from-2")
        cluster.run(5.0)
        values = set()
        for node in (1, 2, 3):
            values.add(cluster.client(node=node).read_at(desc.rid, 6))
        assert values == {b"from-2"}   # the later write won everywhere

    def test_concurrent_writers_never_deadlock(self, cluster):
        kz1, desc = make_region(cluster, node=1)
        kz2 = cluster.client(node=2)
        for i in range(5):
            kz1.write_at(desc.rid, f"a{i}".encode())
            kz2.write_at(desc.rid, f"b{i}".encode())
        cluster.run(5.0)
        final = {cluster.client(node=n).read_at(desc.rid, 2)
                 for n in (0, 1, 2, 3)}
        assert len(final) == 1   # converged


class TestAvailability:
    def test_stale_read_served_when_home_down(self, cluster):
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"survivor")
        kz3 = cluster.client(node=3)
        assert kz3.read_at(desc.rid, 8) == b"survivor"
        cluster.crash(1)   # the region's home dies
        cluster.run(DEFAULT_STALENESS_BOUND + 1.0)
        # Refresh fails, but the stale replica is served anyway.
        assert kz3.read_at(desc.rid, 8) == b"survivor"

    def test_writes_queue_while_home_down(self, cluster):
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"before")
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 6)
        cluster.crash(1)
        cluster.run(0.5)
        kz3.write_at(desc.rid, b"during")   # push will fail, queue
        assert kz3.read_at(desc.rid, 6) == b"during"   # local view
        cluster.recover(1)
        cluster.run(40.0)   # background retry drains
        page = cluster.daemon(1).storage.peek(desc.rid)
        assert page is not None and page.data[:6] == b"during"


class TestUpdatePushFailover:
    def test_secondary_home_naks_misrouted_update_push(self, cluster):
        """Same failover hole as the release protocol: a writer's
        push request that misses the primary home must be refused
        with a nak, never silently absorbed without a reply."""
        kz1, desc = make_region(cluster)
        kz1.write_at(desc.rid, b"v1")
        kz3 = cluster.client(node=3)
        assert kz3.read_at(desc.rid, 2) == b"v1"   # node 3 replicates
        assert desc.primary_home != 3

        replies = []
        cluster.network.attach(2, replies.append)
        cluster.network.send(Message(
            MessageType.UPDATE_PUSH, src=2, dst=3, request_id=4242,
            payload={"rid": desc.rid, "page": desc.rid,
                     "data": b"Z" * 4096},
        ))
        cluster.run(1.0)
        naks = [m for m in replies if m.reply_to == 4242]
        assert [m.msg_type for m in naks] == [MessageType.ERROR]
        assert naks[0].payload["code"] == "not_responsible"
        assert kz3.read_at(desc.rid, 2) == b"v1"
