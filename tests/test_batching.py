"""Tests for batched multi-page protocol operations.

A multi-page lock/unlock cycle coalesces its traffic into one RPC per
(home node, message kind) — PAGE_FETCH_BATCH / TOKEN_ACQUIRE_BATCH /
UPDATE_PUSH_BATCH — while preserving the per-page semantics: partial
failures roll back cleanly and unreachable homes fall back to per-page
background retries.
"""

import pytest

from repro.core.attributes import ConsistencyLevel, RegionAttributes
from repro.core.errors import NotAllocated
from repro.core.locks import LockMode
from repro.net.message import Message, MessageType

PAGE = 4096


def make_region(cluster, node, npages, level, **kwargs):
    kz = cluster.client(node=node)
    attrs = RegionAttributes(consistency_level=level, **kwargs)
    desc = kz.reserve(npages * PAGE, attrs)
    return kz, desc


class TestPartialFailureRollback:
    def test_denied_batch_pins_no_pages(self, quiet_cluster):
        """One page of a batched WRITE lock denied -> no page stays
        pinned on the locker, and no token stays held at the home."""
        cluster = quiet_cluster
        owner, desc = make_region(cluster, 1, 8, ConsistencyLevel.RELEASE)
        # Only the first half of the region gets backing store; locking
        # all 8 pages must fail on page 4.
        owner.allocate(desc.rid, 0, 4 * PAGE)

        locker = cluster.client(node=2)
        with pytest.raises(NotAllocated):
            locker.lock(desc.rid, 8 * PAGE, LockMode.WRITE)

        daemon = cluster.daemon(2)
        pages = [desc.rid + i * PAGE for i in range(8)]
        assert not any(daemon.lock_table.page_locked(p) for p in pages)

        # The home's tokens were given back (all-or-nothing grant):
        # locking the allocated half now succeeds immediately.
        ctx = locker.lock(desc.rid, 4 * PAGE, LockMode.WRITE)
        locker.write(ctx, desc.rid, b"x" * (4 * PAGE))
        locker.unlock(ctx)
        assert cluster.client(node=3).read_at(desc.rid, 4) == b"xxxx"


class TestCrashedHomeFallback:
    def test_release_push_batch_falls_back_to_per_page_retries(
        self, quiet_cluster
    ):
        cluster = quiet_cluster
        owner, desc = make_region(cluster, 1, 4, ConsistencyLevel.RELEASE)
        owner.allocate(desc.rid)

        writer = cluster.client(node=2)
        ctx = writer.lock(desc.rid, 4 * PAGE, LockMode.WRITE)
        writer.write(ctx, desc.rid, b"d" * (4 * PAGE))
        cluster.crash(1)
        writer.unlock(ctx)   # batch push fails; never raises

        queue = cluster.daemon(2).retry_queue
        assert queue.pending >= 4
        assert any(label.startswith("release-token:")
                   for label in queue.labels())

        cluster.recover(1)
        cluster.run(120.0)   # background retries drain per page
        assert queue.pending == 0
        assert cluster.client(node=3).read_at(desc.rid, 4) == b"dddd"

    def test_eventual_push_batch_falls_back_to_per_page_retries(
        self, quiet_cluster
    ):
        cluster = quiet_cluster
        owner, desc = make_region(cluster, 1, 4, ConsistencyLevel.EVENTUAL)
        owner.allocate(desc.rid)

        writer = cluster.client(node=2)
        ctx = writer.lock(desc.rid, 4 * PAGE, LockMode.WRITE)
        writer.write(ctx, desc.rid, b"e" * (4 * PAGE))
        cluster.crash(1)
        writer.unlock(ctx)

        queue = cluster.daemon(2).retry_queue
        assert queue.pending >= 4
        assert any(label.startswith("eventual-push:")
                   for label in queue.labels())

        cluster.recover(1)
        cluster.run(120.0)
        assert queue.pending == 0
        cluster.run(5.0)   # node 3's refresh window expires
        assert cluster.client(node=3).read_at(desc.rid, 4) == b"eeee"


class TestOneRequestPerHome:
    def test_crew_write_cycle_batches_per_home(self, quiet_cluster):
        """A multi-page CREW write cycle issues one TOKEN_ACQUIRE_BATCH
        to the primary home and one UPDATE_PUSH_BATCH per home — no
        per-page LOCK_REQUEST/UPDATE_PUSH traffic at all."""
        cluster = quiet_cluster
        owner, desc = make_region(
            cluster, 1, 8, ConsistencyLevel.STRICT, min_replicas=2
        )
        owner.allocate(desc.rid)
        cluster.run(1.0)
        assert len(desc.home_nodes) == 2
        locker_node = next(
            n for n in cluster.node_ids() if n not in desc.home_nodes
        )
        locker = cluster.client(node=locker_node)

        before = cluster.stats.snapshot()
        ctx = locker.lock(desc.rid, 8 * PAGE, LockMode.WRITE)
        locker.write(ctx, desc.rid, b"c" * (8 * PAGE))
        locker.unlock(ctx)
        delta = cluster.stats.delta_since(before)

        assert delta.count(MessageType.TOKEN_ACQUIRE_BATCH) == 1
        assert delta.count(MessageType.UPDATE_PUSH_BATCH) == 2
        assert delta.count(MessageType.LOCK_REQUEST) == 0
        assert delta.count(MessageType.UPDATE_PUSH) == 0
        assert delta.count(MessageType.PAGE_FETCH) == 0

    def test_release_read_batches_fetches(self, quiet_cluster):
        cluster = quiet_cluster
        owner, desc = make_region(cluster, 1, 8, ConsistencyLevel.RELEASE)
        owner.allocate(desc.rid)
        owner.write_at(desc.rid, b"r" * (8 * PAGE))

        reader = cluster.client(node=2)
        # Warm up the reader's address-map/descriptor caches (the map
        # itself is a one-page release region served per-page) so the
        # delta below is the region's own traffic.
        reader.read_at(desc.rid + 7 * PAGE, 1)
        before = cluster.stats.snapshot()
        assert reader.read_at(desc.rid, 8 * PAGE) == b"r" * (8 * PAGE)
        delta = cluster.stats.delta_since(before)

        # Pages 0..6 are missing locally -> one batch; page 7 is the
        # cached warm-up copy.
        assert delta.count(MessageType.PAGE_FETCH_BATCH) == 1
        assert delta.count(MessageType.PAGE_FETCH) == 0

    def test_disabling_batching_restores_per_page_path(self, ):
        from repro.api import create_cluster
        from repro.core.daemon import DaemonConfig

        cluster = create_cluster(
            num_nodes=4,
            config=DaemonConfig(enable_failure_handling=False,
                                enable_batching=False),
        )
        owner, desc = make_region(cluster, 1, 8, ConsistencyLevel.RELEASE)
        owner.allocate(desc.rid)

        writer = cluster.client(node=2)
        before = cluster.stats.snapshot()
        ctx = writer.lock(desc.rid, 8 * PAGE, LockMode.WRITE)
        writer.write(ctx, desc.rid, b"p" * (8 * PAGE))
        writer.unlock(ctx)
        delta = cluster.stats.delta_since(before)

        assert delta.count(MessageType.TOKEN_ACQUIRE_BATCH) == 0
        assert delta.count(MessageType.UPDATE_PUSH_BATCH) == 0
        assert delta.count(MessageType.LOCK_REQUEST) == 8
        assert delta.count(MessageType.UPDATE_PUSH) == 8


class TestSizeBytesRecursion:
    def test_batch_payload_counts_embedded_page_data(self):
        msg = Message(
            msg_type=MessageType.UPDATE_PUSH_BATCH, src=1, dst=0,
            payload={"rid": 0, "updates": [
                {"page": 0, "data": b"x" * PAGE, "release_token": True},
                {"page": PAGE, "data": b"y" * PAGE, "release_token": True},
            ]},
        )
        assert msg.size_bytes() >= 2 * PAGE

    def test_nested_containers_recurse(self):
        flat = Message(
            msg_type=MessageType.UPDATE_PUSH, src=1, dst=0,
            payload={"data": b"z" * 100},
        )
        nested = Message(
            msg_type=MessageType.UPDATE_PUSH, src=1, dst=0,
            payload={"diff": [(0, b"z" * 100)]},
        )
        # The wrapping list/tuple adds only constant overhead; the
        # embedded bytes dominate either way.
        assert nested.size_bytes() >= 100
        assert abs(nested.size_bytes() - flat.size_bytes()) < 64


class TestFullPageWriteFastPath:
    def test_full_page_write_skips_read_modify_write(self, quiet_cluster):
        cluster = quiet_cluster
        owner, desc = make_region(cluster, 1, 2, ConsistencyLevel.RELEASE)
        owner.allocate(desc.rid)
        ctx = owner.lock(desc.rid, 2 * PAGE, LockMode.WRITE)

        data_plane = cluster.daemon(1).data
        calls = []
        original = data_plane.local_page_bytes

        def counting(desc_, page_addr):
            calls.append(page_addr)
            return original(desc_, page_addr)

        data_plane.local_page_bytes = counting
        try:
            owner.write(ctx, desc.rid, b"f" * PAGE)   # exactly one page
            assert calls == []
            # A partial write of a *non-resident* page must read the
            # current contents first (the synchronous fast path only
            # serves RAM-resident pages, so this takes op_write).
            data_plane.kernel.storage.drop(desc.rid + PAGE)
            owner.write(ctx, desc.rid + PAGE, b"g" * 10)   # partial page
            assert len(calls) >= 1
        finally:
            data_plane.local_page_bytes = original
        # A partial write of a resident page merges with what's there,
        # whichever path served it.
        owner.write(ctx, desc.rid + PAGE + 10, b"h" * 10)
        owner.unlock(ctx)
        assert owner.read_at(desc.rid, PAGE) == b"f" * PAGE
        assert owner.read_at(desc.rid + PAGE, 20) == b"g" * 10 + b"h" * 10
