"""Tests for the cluster launcher plumbing (repro.tools.cluster).

The full multi-process launcher runs in CI's cluster-smoke job; here
the same building blocks run in-process (daemons on one loop, each on
its own TcpTransport, so traffic still crosses real sockets) to pin
down the workload, the control plane, and fsck-over-snapshots without
subprocess overhead.
"""

from __future__ import annotations

import argparse
import socket
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core.client import KhazanaSession
from repro.net.aio import AsyncioDriver, AsyncioRuntime
from repro.tools import fsck
from repro.tools.cluster import (
    SnapshotCluster,
    address_book,
    build_node,
    node_config,
    parse_peers,
    register_control,
    resolve_book,
    run_client,
    run_workload,
    snapshot_node,
)


@pytest.fixture()
def mini_cluster():
    """One daemon (node 0) plus a client node (node 1), real sockets."""
    book = {}
    runtimes, daemons = [], []
    shared = None
    for node in (0, 1):
        runtime = AsyncioRuntime(shared.loop if shared else None)
        shared = shared or runtime
        runtime, daemon = build_node(node, book, runtime=runtime,
                                     config=node_config())
        runtimes.append(runtime)
        daemons.append(daemon)
    for runtime, daemon in zip(runtimes, daemons):
        daemon.bootstrap_system_region(peers=[0, 1])
        register_control(daemon, runtime)
    client_runtime = runtimes[1]
    session = KhazanaSession(daemons[1],
                             AsyncioDriver(client_runtime, timeout=30.0),
                             principal="test-cluster")
    try:
        yield client_runtime, daemons, session
    finally:
        for daemon in daemons:
            daemon.stop()

        async def shutdown():
            for daemon in daemons:
                await daemon.network.aclose()

        client_runtime.loop.run_until_complete(shutdown())
        client_runtime.close()


class TestAddressBook:
    def test_covers_daemons_plus_client(self):
        book = address_book(3, 21000)
        assert sorted(book) == [0, 1, 2, 3]
        assert book[3] == ("127.0.0.1", 21003)


class TestPeersBook:
    def test_parse_multi_machine_spec(self):
        book = parse_peers("10.0.0.1:7000, 10.0.0.2:7000 ,10.0.0.9:7100")
        assert book == {
            0: ("10.0.0.1", 7000),
            1: ("10.0.0.2", 7000),
            2: ("10.0.0.9", 7100),
        }

    def test_single_entry_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            parse_peers("10.0.0.1:7000")

    def test_missing_port_rejected(self):
        with pytest.raises(ValueError, match="host:port"):
            parse_peers("10.0.0.1:7000,10.0.0.2")

    def test_garbage_port_rejected(self):
        with pytest.raises(ValueError, match="port"):
            parse_peers("10.0.0.1:7000,10.0.0.2:smtp")

    def test_resolve_book_prefers_peers(self):
        args = argparse.Namespace(peers="h1:1,h2:2", nodes=5,
                                  base_port=21000)
        assert resolve_book(args) == {0: ("h1", 1), 1: ("h2", 2)}
        args.peers = None
        assert len(resolve_book(args)) == 6

    def test_two_process_smoke_over_peers_book(self):
        """The multi-machine shape, minimally: daemon 0 in its own
        process, the client in this one, both handed the same --peers
        spec instead of a computed localhost book."""
        ports = []
        for _ in range(2):
            probe = socket.socket()
            probe.bind(("127.0.0.1", 0))
            ports.append(probe.getsockname()[1])
            probe.close()
        spec = f"127.0.0.1:{ports[0]},127.0.0.1:{ports[1]}"
        src = str(Path(repro.__file__).resolve().parents[1])
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.tools.cluster",
             "--serve", "--node", "0", "--peers", spec],
            stdout=subprocess.PIPE, text=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
        )
        try:
            assert proc.stdout is not None
            assert proc.stdout.readline().strip() == "READY"
            status = run_client(argparse.Namespace(
                peers=spec, nodes=1, base_port=0, workload="crew",
                ops=2, pages=2, op_timeout=30.0,
            ))
            assert status == 0
            assert proc.wait(timeout=10.0) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
            if proc.stdout:
                proc.stdout.close()


class TestWorkloads:
    @pytest.mark.parametrize("protocol", ["crew", "release"])
    def test_read_your_writes_over_real_sockets(self, mini_cluster,
                                                protocol):
        _runtime, _daemons, session = mini_cluster
        outcome = run_workload(session, protocol, home_node=0,
                               pages=2, ops=3)
        assert outcome["ops"] == 3
        assert outcome["protocol"] == protocol


class TestSnapshotFsck:
    def test_fsck_is_clean_over_live_snapshots(self, mini_cluster):
        _runtime, daemons, session = mini_cluster
        run_workload(session, "crew", home_node=0, pages=2, ops=2)
        snapshots = [snapshot_node(daemon) for daemon in daemons]
        report = fsck.check_cluster(SnapshotCluster(snapshots))
        assert report.ok, report.render()

    def test_snapshot_is_plain_data(self, mini_cluster):
        _runtime, daemons, _session = mini_cluster
        import pickle

        snap = snapshot_node(daemons[0])
        clone = pickle.loads(pickle.dumps(snap))
        assert clone["node"] == 0
        assert "regions" in clone and "entries" in clone
