"""Tests for region access control."""

from repro.core.security import (
    ANYONE,
    SYSTEM_PRINCIPAL,
    AccessControlList,
    Right,
)


class TestRights:
    def test_flags_compose(self):
        rw = Right.READ | Right.WRITE
        assert (rw & Right.READ) == Right.READ
        assert (rw & Right.ADMIN) != Right.ADMIN

    def test_all_rights(self):
        assert Right.all_rights() == Right.READ | Right.WRITE | Right.ADMIN


class TestAcl:
    def test_owner_has_everything(self):
        acl = AccessControlList.private("alice")
        assert acl.allows("alice", Right.all_rights())

    def test_system_principal_always_allowed(self):
        acl = AccessControlList.private("alice")
        assert acl.allows(SYSTEM_PRINCIPAL, Right.all_rights())

    def test_private_blocks_others(self):
        acl = AccessControlList.private("alice")
        assert not acl.allows("bob", Right.READ)

    def test_open_access_allows_everyone(self):
        acl = AccessControlList.open_access("alice")
        assert acl.allows("bob", Right.READ | Right.WRITE)

    def test_explicit_grant(self):
        acl = AccessControlList.build("alice", {"bob": Right.READ})
        assert acl.allows("bob", Right.READ)
        assert not acl.allows("bob", Right.WRITE)

    def test_wildcard_grant(self):
        acl = AccessControlList.build("alice", {ANYONE: Right.READ})
        assert acl.allows("carol", Right.READ)
        assert not acl.allows("carol", Right.WRITE)

    def test_granting_is_functional_update(self):
        base = AccessControlList.private("alice")
        extended = base.granting("bob", Right.WRITE)
        assert not base.allows("bob", Right.WRITE)
        assert extended.allows("bob", Right.WRITE)

    def test_grants_accumulate(self):
        acl = (
            AccessControlList.private("alice")
            .granting("bob", Right.READ)
            .granting("bob", Right.WRITE)
        )
        assert acl.allows("bob", Right.READ | Right.WRITE)

    def test_revoking(self):
        acl = AccessControlList.private("alice").granting("bob", Right.READ)
        revoked = acl.revoking("bob")
        assert not revoked.allows("bob", Right.READ)
        assert revoked.allows("alice", Right.ADMIN)

    def test_principals_listing(self):
        acl = AccessControlList.build("alice", {"bob": Right.READ})
        assert acl.principals() == frozenset({"alice", "bob"})

    def test_wire_roundtrip(self):
        acl = AccessControlList.build(
            "alice", {"bob": Right.READ | Right.WRITE, ANYONE: Right.READ}
        )
        clone = AccessControlList.from_wire(acl.to_wire())
        assert clone == acl
        assert clone.allows("bob", Right.WRITE)
        assert clone.allows("zoe", Right.READ)
