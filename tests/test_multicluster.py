"""Tests for multi-cluster hierarchies (paper Section 3.1).

"For scalability, the design of Khazana organizes nodes into groups
of closely-connected nodes called clusters.  A large-scale version of
Khazana would involve multiple clusters, organized into a hierarchy
... Each cluster has one or more designated cluster managers, nodes
responsible for being aware of other cluster locations, caching hint
information about regions stored in the local cluster, and
representing the local cluster during inter-cluster communication."

The paper's prototype stopped at one cluster ("Cluster hierarchies
are yet to be implemented"); this reproduction implements them.
"""

import pytest

from repro.api import create_cluster, create_hierarchy
from repro.net.sim import LAN_LATENCY, WAN_LATENCY


@pytest.fixture
def hierarchy():
    """Two 3-node clusters: {0,1,2} managed by 0, {3,4,5} by 3."""
    return create_hierarchy([3, 3])


def publish(cluster, node, payload=b"payload"):
    kz = cluster.client(node=node)
    desc = kz.reserve(4096)
    kz.allocate(desc.rid)
    kz.write_at(desc.rid, payload)
    cluster.run(1.0)   # hint reaches the local manager
    return desc


class TestConstruction:
    def test_manager_assignment(self, hierarchy):
        assert hierarchy.daemon(0).cluster_role is not None
        assert hierarchy.daemon(3).cluster_role is not None
        for node in (1, 2, 4, 5):
            assert hierarchy.daemon(node).cluster_role is None

    def test_peer_managers_wired(self, hierarchy):
        assert hierarchy.daemon(0).config.peer_managers == (3,)
        assert hierarchy.daemon(3).config.peer_managers == (0,)
        assert hierarchy.daemon(4).config.cluster_manager_node == 3

    def test_topology_lan_inside_wan_between(self, hierarchy):
        topo = hierarchy.topology
        assert topo.link(0, 2).base_latency == LAN_LATENCY
        assert topo.link(4, 5).base_latency == LAN_LATENCY
        assert topo.link(1, 4).base_latency == WAN_LATENCY

    def test_bad_partition_rejected(self):
        with pytest.raises(ValueError):
            create_cluster(num_nodes=4, clusters=[[0, 1], [1, 2, 3]])
        with pytest.raises(ValueError):
            create_cluster(num_nodes=4, clusters=[[0, 1], [3]])

    def test_three_clusters(self):
        cluster = create_hierarchy([2, 2, 2])
        assert cluster.daemon(2).config.peer_managers == (0, 4)
        assert cluster.daemon(5).config.cluster_manager_node == 4


class TestCrossClusterAccess:
    def test_data_readable_across_clusters(self, hierarchy):
        desc = publish(hierarchy, node=1, payload=b"cross")
        assert hierarchy.client(node=4).read_at(desc.rid, 5) == b"cross"

    def test_first_lookup_uses_intercluster_tier(self, hierarchy):
        desc = publish(hierarchy, node=1)
        hierarchy.client(node=4).read_at(desc.rid, 7)
        tiers = hierarchy.daemon(4).stats.lookup_tiers
        assert tiers.get("intercluster", 0) == 1

    def test_manager_caches_remote_answer_for_cluster(self, hierarchy):
        desc = publish(hierarchy, node=1)
        hierarchy.client(node=4).read_at(desc.rid, 7)
        # A second node in cluster 1 resolves via its LOCAL manager.
        hierarchy.client(node=5).read_at(desc.rid, 7)
        tiers = hierarchy.daemon(5).stats.lookup_tiers
        assert tiers.get("cluster", 0) == 1
        assert tiers.get("intercluster", 0) == 0

    def test_intra_cluster_lookup_stays_local(self, hierarchy):
        desc = publish(hierarchy, node=4)   # lives in cluster 1
        before = hierarchy.stats.snapshot()
        hierarchy.client(node=5).read_at(desc.rid, 7)
        delta = hierarchy.stats.delta_since(before)
        assert delta.messages_sent > 0
        tiers = hierarchy.daemon(5).stats.lookup_tiers
        assert tiers.get("cluster", 0) >= 1
        assert tiers.get("intercluster", 0) == 0

    def test_manager_itself_queries_peers(self, hierarchy):
        desc = publish(hierarchy, node=1)
        # Node 3 IS a manager; its lookup must hop to manager 0.
        assert hierarchy.client(node=3).read_at(desc.rid, 7) == b"payload"
        tiers = hierarchy.daemon(3).stats.lookup_tiers
        assert tiers.get("intercluster", 0) == 1

    def test_writes_stay_consistent_across_clusters(self, hierarchy):
        desc = publish(hierarchy, node=1, payload=b"gen-0")
        kz4 = hierarchy.client(node=4)
        assert kz4.read_at(desc.rid, 5) == b"gen-0"
        kz4.write_at(desc.rid, b"gen-1")
        assert hierarchy.client(node=2).read_at(desc.rid, 5) == b"gen-1"

    def test_space_grants_work_in_remote_cluster(self, hierarchy):
        # Node 4's reserve goes through manager 3, whose chunk
        # delegation updates the address map homed in cluster 0.
        kz4 = hierarchy.client(node=4)
        desc = kz4.reserve(4096)
        kz4.allocate(desc.rid)
        kz4.write_at(desc.rid, b"remote-cluster-region")
        assert hierarchy.client(node=0).read_at(desc.rid, 21) == (
            b"remote-cluster-region"
        )

    def test_dead_peer_manager_falls_back_to_map(self, hierarchy):
        desc = publish(hierarchy, node=1)
        hierarchy.crash(0)   # cluster 0's manager (and map home) dies
        hierarchy.run(5.0)
        # Cluster-1 node can still find the region via deeper tiers
        # (cluster walk, since the map home is also node 0 here).
        assert hierarchy.client(node=4).read_at(desc.rid, 7) == b"payload"
