"""Cross-protocol conformance matrix.

Every consistency manager rides the same protocol engine
(``repro.consistency.engine``); this suite runs one scenario matrix —
single-page read/write, multi-page batch cycles, conflicting writers,
node failure mid-acquire, unlock-after-close — across all four
registered protocols and pins down where their guarantees agree
(client-side lock discipline, home failover, convergence) and where
they deliberately differ (token protocols serialize writers,
availability-first protocols do not).
"""

import pytest

from repro.api import create_cluster
from repro.consistency.engine.state import add_trace_hook, remove_trace_hook
from repro.core.addressing import AddressRange
from repro.core.attributes import RegionAttributes
from repro.core.daemon import DaemonConfig
from repro.core.errors import InvalidLockContext
from repro.core.locks import LockMode

PROTOCOLS = ["crew", "release", "eventual", "mobile"]

#: (state_before, event) pairs observed per protocol while the matrix
#: runs; the KHZ204 coverage gate at the bottom of this file diffs it
#: against the statically extracted automaton edge lists.
EXERCISED = {}


@pytest.fixture(scope="module", autouse=True)
def _trace_automata():
    def hook(label, before, event, after):
        if label:
            EXERCISED.setdefault(label, set()).add(
                (before.name, event.name)
            )

    add_trace_hook(hook)
    yield
    remove_trace_hook(hook)

#: Protocols whose write grant is a globally exclusive token: a second
#: writer blocks until the first releases.  The availability-first
#: protocols (bounded staleness, epidemic) never block a writer.
SERIALIZED = {"crew", "release"}

PAGE = 4096


def make_region(cluster, protocol, size=PAGE, node=1, min_replicas=1):
    kz = cluster.client(node=node)
    desc = kz.reserve(
        size,
        RegionAttributes(
            consistency_protocol=protocol, min_replicas=min_replicas
        ),
    )
    kz.allocate(desc.rid)
    return kz, desc


def locked_write(session, desc, payload, length=PAGE):
    """Protocol generator: full lock-write-unlock cycle on the daemon."""
    daemon = session.daemon
    target = AddressRange(desc.rid, length)

    def task():
        ctx = yield from daemon.op_lock(target, LockMode.WRITE,
                                        session.principal)
        yield from daemon.op_write(
            ctx, AddressRange(desc.rid, len(payload)), payload
        )
        yield from daemon.op_unlock(ctx)

    return task()


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestSinglePage:
    def test_read_your_writes(self, cluster, protocol):
        kz, desc = make_region(cluster, protocol)
        kz.write_at(desc.rid, b"local")
        assert kz.read_at(desc.rid, 5) == b"local"

    def test_remote_read_sees_released_write(self, cluster, protocol):
        kz, desc = make_region(cluster, protocol)
        kz.write_at(desc.rid, b"published")
        cluster.run(2.0)   # weak protocols: let the push/gossip land
        assert cluster.client(node=3).read_at(desc.rid, 9) == b"published"


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestMultiPageBatch:
    PAGES = 4
    SIZE = PAGES * PAGE

    def test_remote_multi_page_cycle_converges(self, cluster, protocol):
        kz1, desc = make_region(cluster, protocol, size=self.SIZE)
        kz1.write_at(desc.rid, b"a" * self.SIZE)
        cluster.run(2.0)

        kz3 = cluster.client(node=3)
        ctx = kz3.lock(desc.rid, self.SIZE, LockMode.WRITE)
        assert kz3.read(ctx, desc.rid, self.SIZE) == b"a" * self.SIZE
        kz3.write(ctx, desc.rid, b"b" * self.SIZE)
        kz3.unlock(ctx)
        assert kz3.read_at(desc.rid, self.SIZE) == b"b" * self.SIZE

        cluster.run(4.0)   # write-back / anti-entropy rounds
        assert cluster.client(node=0).read_at(desc.rid, 4) == b"bbbb"


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestConflictingWriters:
    def test_second_writer_blocks_iff_token_protocol(self, cluster, protocol):
        kz1, desc = make_region(cluster, protocol)
        kz1.write_at(desc.rid, b"base")
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 4)   # node 3 holds a replica

        ctx = kz1.lock(desc.rid, PAGE, LockMode.WRITE)
        future = kz3.submit(locked_write(kz3, desc, b"from-3"), "bg-write")
        cluster.run(2.0)

        if protocol in SERIALIZED:
            # Exclusive token: writer 3 waits for writer 1's release.
            assert not future.done
        else:
            # Availability first: writer 3 proceeds against its replica.
            assert future.done and future.exception() is None
        kz1.write(ctx, desc.rid, b"from-1")
        kz1.unlock(ctx)
        cluster.run(30.0)
        assert future.done and future.exception() is None
        if protocol in SERIALIZED:
            # Writer 3 was granted after writer 1 released: last write
            # wins everywhere, and both cycles completed cleanly.
            assert kz3.read_at(desc.rid, 6) == b"from-3"


#: Protocols that replicate released writes to every home node, so a
#: failover read still sees the payload.  Release and eventual push
#: updates to the primary home only; their failover grant serves the
#: secondary's (possibly untouched) copy — availability over recency.
DURABLE_ON_FAILOVER = {"crew", "mobile"}


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestNodeFailureMidAcquire:
    def test_acquire_fails_over_to_secondary_home(self, big_cluster,
                                                  protocol):
        cluster = big_cluster
        kz1, desc = make_region(cluster, protocol, min_replicas=2)
        writer = cluster.client(node=3)
        writer.write_at(desc.rid, b"durable")
        cluster.run(2.0)   # write-back reaches the home(s)
        assert len(desc.home_nodes) >= 2

        cluster.crash(desc.home_nodes[0])
        # No failure-detection grace period: the very next acquire must
        # time out on the dead primary and fail over mid-transaction.
        # Every protocol's engine completes the acquire on a survivor.
        data = cluster.client(node=5).read_at(desc.rid, 7)
        if protocol in DURABLE_ON_FAILOVER:
            assert data == b"durable"
        else:
            assert len(data) == 7


# --- The same matrix over the hash ring, with mid-scenario churn ------------
#
# Every scenario above assumed a fixed member set.  Under the ring
# placement a node can join mid-scenario: directors move, regions
# re-home, and the protocols must neither lose writes nor deadlock.
# Each scenario calls ``churn()`` at its most inconvenient point.


def _ring_cluster(num_nodes):
    return create_cluster(num_nodes=num_nodes,
                          config=DaemonConfig(placement="ring"))


def _scenario_single_page(cluster, protocol, churn):
    kz, desc = make_region(cluster, protocol)
    kz.write_at(desc.rid, b"published")
    churn()   # the write's home may re-home before the remote read
    cluster.run(2.0)
    assert cluster.client(node=3).read_at(desc.rid, 9) == b"published"


def _scenario_multi_page_batch(cluster, protocol, churn):
    size = 4 * PAGE
    kz1, desc = make_region(cluster, protocol, size=size)
    kz1.write_at(desc.rid, b"a" * size)
    churn()   # between publish and the remote batch cycle
    kz3 = cluster.client(node=3)
    ctx = kz3.lock(desc.rid, size, LockMode.WRITE)
    assert kz3.read(ctx, desc.rid, size) == b"a" * size
    kz3.write(ctx, desc.rid, b"b" * size)
    kz3.unlock(ctx)
    cluster.run(4.0)
    assert cluster.client(node=0).read_at(desc.rid, 4) == b"bbbb"


def _scenario_conflicting_writers(cluster, protocol, churn):
    kz1, desc = make_region(cluster, protocol)
    kz1.write_at(desc.rid, b"base")
    kz3 = cluster.client(node=3)
    kz3.read_at(desc.rid, 4)
    ctx = kz1.lock(desc.rid, PAGE, LockMode.WRITE)
    future = kz3.submit(locked_write(kz3, desc, b"from-3"), "bg-write")
    churn()   # membership changes while a writer holds the token
    cluster.run(2.0)
    if protocol in SERIALIZED:
        assert not future.done
    kz1.write(ctx, desc.rid, b"from-1")
    kz1.unlock(ctx)
    cluster.run(30.0)
    assert future.done and future.exception() is None


def _scenario_failure_mid_acquire(cluster, protocol, churn):
    kz1, desc = make_region(cluster, protocol, min_replicas=2)
    cluster.client(node=3).write_at(desc.rid, b"durable")
    cluster.run(2.0)
    churn()   # re-homing may be mid-flight when the primary dies
    primary = next(
        node for node in cluster.node_ids()
        if (d := cluster.daemon(node).homed_regions.get(desc.rid))
        is not None and d.primary_home == node
    )
    cluster.crash(primary)
    reader = 5 if primary != 5 else 4
    assert len(cluster.client(node=reader).read_at(desc.rid, 7)) == 7


def _scenario_unlock_after_close(cluster, protocol, churn):
    kz, desc = make_region(cluster, protocol)
    ctx = kz.lock(desc.rid, PAGE, LockMode.READ)
    churn()   # an open context straddles the membership change
    kz.unlock(ctx)
    with pytest.raises(InvalidLockContext):
        kz.unlock(ctx)


RING_CHURN_SCENARIOS = {
    "single_page": (4, _scenario_single_page),
    "multi_page_batch": (4, _scenario_multi_page_batch),
    "conflicting_writers": (4, _scenario_conflicting_writers),
    "failure_mid_acquire": (8, _scenario_failure_mid_acquire),
    "unlock_after_close": (4, _scenario_unlock_after_close),
}


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("scenario", sorted(RING_CHURN_SCENARIOS))
class TestRingChurnMatrix:
    def test_scenario_survives_mid_run_join(self, scenario, protocol):
        num_nodes, run_scenario = RING_CHURN_SCENARIOS[scenario]
        cluster = _ring_cluster(num_nodes)
        before = len(cluster.node_ids())

        def churn():
            cluster.add_node()
            cluster.run(1.0)   # join gossip in flight, not settled

        run_scenario(cluster, protocol, churn)
        assert len(cluster.node_ids()) == before + 1


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestUnlockAfterClose:
    def test_double_unlock_raises(self, cluster, protocol):
        kz, desc = make_region(cluster, protocol)
        ctx = kz.lock(desc.rid, PAGE, LockMode.READ)
        kz.unlock(ctx)
        with pytest.raises(InvalidLockContext):
            kz.unlock(ctx)

    def test_closed_context_rejects_io(self, cluster, protocol):
        kz, desc = make_region(cluster, protocol)
        ctx = kz.lock(desc.rid, PAGE, LockMode.WRITE)
        kz.write(ctx, desc.rid, b"ok")
        kz.unlock(ctx)
        with pytest.raises(InvalidLockContext):
            kz.read(ctx, desc.rid, 2)  # khz: allow-stale-context(conformance: stale handles must raise under every protocol)


class TestAutomatonCoverage:
    """KHZ204 gate: the matrix above must exercise the declared edges.

    Runs last (pytest executes this file in order): by now EXERCISED
    holds every (state, event) pair the scenarios drove through each
    protocol's PageStateMachine.  The static side of the diff is the
    verifier's extracted edge list — the same models
    ``python -m repro.analysis.protocol`` checks — so a transition
    added to a TRANSITIONS table without a conformance scenario fails
    here with a ready-to-paste test skeleton.
    """

    THRESHOLD = 0.9

    def _models(self):
        from repro.analysis import sources
        from repro.analysis.flow.callgraph import CallGraph
        from repro.analysis.protocol.model import extract_models

        files = sources.collect(["src/repro/consistency/"])
        return extract_models(CallGraph(files))

    def test_matrix_covers_declared_edges(self):
        from repro.analysis.protocol.coverage import (
            edge_report,
            total_coverage,
            uncovered_skeletons,
        )

        models = self._models()
        assert {m.protocol for m in models} == set(PROTOCOLS)
        report = edge_report(models, EXERCISED)
        coverage = total_coverage(report)
        skeletons = uncovered_skeletons(models, EXERCISED)
        assert coverage >= self.THRESHOLD, (
            f"conformance matrix exercises {coverage:.0%} of the "
            f"declared automaton edges (gate: {self.THRESHOLD:.0%}); "
            "add scenarios for the uncovered edges:\n\n"
            + "\n".join(skeletons)
        )

    def test_observed_edges_stay_inside_the_model(self):
        # The dynamic trace is the automaton's ground truth: any
        # (protocol, event) pair the engine fired must be declared.
        models = {m.protocol: m for m in self._models()}
        for protocol, seen in sorted(EXERCISED.items()):
            declared = set(models[protocol].declared_events)
            fired = {event for _state, event in seen}
            assert fired <= declared, (
                f"{protocol} fired undeclared events "
                f"{sorted(fired - declared)}"
            )
