"""Tests for the real-socket transport (repro.net.tcp / repro.net.frame).

Everything here runs over genuine localhost sockets: two transports
share one loop and one address book, so frames between them cross the
kernel.  Covered contracts:

- exact size accounting — while a transport is alive,
  ``Message.size_bytes()`` equals the bytes that actually hit the
  socket, for codec-framed hot types and pickled cold types alike;
- RPC timeout/retry — a request into a dead port retransmits per its
  :class:`~repro.net.rpc.RetryPolicy` and then fails with
  :class:`~repro.net.rpc.RpcTimeout`, exactly as over the simulator;
- detach semantics — sends to a dead peer drop silently (counted,
  never raised), and ``RpcEndpoint.shutdown`` fails every in-flight
  request cleanly.
"""

from __future__ import annotations

import pytest

from repro.net import frame
from repro.net.aio import AsyncioRuntime
from repro.net.message import Message, MessageType
from repro.net.rpc import RetryPolicy, RpcEndpoint, RpcTimeout
from repro.net.tasks import Future
from repro.net.tcp import TcpTransport


@pytest.fixture()
def loopback():
    """Two transports (nodes 1 and 2) on one loop and shared book."""
    runtime = AsyncioRuntime()
    book = {}
    t1 = TcpTransport(book, runtime.loop)
    t2 = TcpTransport(book, runtime.loop)
    runtime.loop.run_until_complete(t1.listen(1))
    runtime.loop.run_until_complete(t2.listen(2))
    try:
        yield runtime, book, t1, t2
    finally:
        runtime.loop.run_until_complete(t1.aclose())
        runtime.loop.run_until_complete(t2.aclose())
        runtime.close()


def _drain_until(runtime: AsyncioRuntime, predicate, timeout: float = 5.0):
    """Run the loop until ``predicate()`` is true (or fail the test)."""
    fence = Future(label="fence")

    def poll() -> None:
        if predicate():
            fence.set_result(None)
        else:
            runtime.call_later(0.005, poll, label="poll")

    poll()
    runtime.run_future(fence, timeout=timeout)


class TestFrameRoundtrip:
    def test_hot_and_cold_types_cross_the_socket(self, loopback):
        runtime, _book, t1, t2 = loopback
        received = []
        t2.attach(2, received.append)

        hot = Message(MessageType.PAGE_DATA, src=1, dst=2,
                      payload={"address": 0x1000, "data": b"p" * 256})
        cold = Message(MessageType.APP_REPLY, src=1, dst=2,
                       payload={"snapshot": {"nested": [1, 2, 3]}},
                       reply_to=7)
        t1.send(hot)
        t1.send(cold)
        _drain_until(runtime, lambda: len(received) == 2)

        got_hot, got_cold = received
        assert got_hot.msg_type is MessageType.PAGE_DATA
        assert bytes(got_hot.payload["data"]) == b"p" * 256
        assert got_cold.msg_type is MessageType.APP_REPLY
        assert got_cold.payload == {"snapshot": {"nested": [1, 2, 3]}}
        assert got_cold.reply_to == 7

    def test_memoryview_payloads_survive_pickling(self, loopback):
        runtime, _book, t1, t2 = loopback
        received = []
        t2.attach(2, received.append)
        # Zero-copy reads hand out memoryviews; a cold-type frame must
        # carry them as bytes rather than refusing to pickle.
        msg = Message(MessageType.APP_REPLY, src=1, dst=2,
                      payload={"data": memoryview(b"z" * 64)})
        t1.send(msg)
        _drain_until(runtime, lambda: received)
        assert bytes(received[0].payload["data"]) == b"z" * 64


class TestExactSizes:
    def test_reported_size_equals_bytes_on_the_wire(self, loopback):
        runtime, _book, t1, t2 = loopback
        received = []
        t2.attach(2, received.append)

        messages = [
            Message(MessageType.PAGE_DATA, src=1, dst=2,
                    payload={"address": 0x2000, "data": b"q" * 512}),
            Message(MessageType.APP_REPLY, src=1, dst=2,
                    payload={"snapshot": {"k": list(range(40))}},
                    reply_to=3),
        ]
        before = t1.stats.bytes_sent
        for msg in messages:
            # While a transport is alive the size codec reports exact
            # frame sizes, so accounting equals the socket.
            assert msg.size_bytes() == len(frame.encode_frame(msg))
            t1.send(msg)
        _drain_until(runtime, lambda: len(received) == 2)

        tap_measured = t1.stats.bytes_sent - before
        reported = sum(msg.size_bytes() for msg in messages)
        assert tap_measured == reported

    def test_cold_type_size_is_the_pickled_frame_not_an_estimate(self):
        msg = Message(MessageType.APP_REPLY, src=1, dst=2,
                      payload={"snapshot": {"k": list(range(200))}})
        estimated = msg.size_bytes()
        frame.install_exact_sizes()
        try:
            exact = msg.size_bytes()
            assert exact == len(frame.encode_frame(msg))
            assert exact != estimated
        finally:
            frame.uninstall_exact_sizes()
        assert msg.size_bytes() == estimated


class TestRpcOverTcp:
    def test_request_reply_roundtrip(self, loopback):
        runtime, _book, t1, t2 = loopback
        a = RpcEndpoint(1, t1, runtime)
        b = RpcEndpoint(2, t2, runtime)
        b.on(MessageType.APP_REQUEST,
             lambda msg: b.reply(msg, MessageType.APP_REPLY,
                                 {"echo": msg.payload["n"]}))
        reply = runtime.run_future(
            a.request(2, MessageType.APP_REQUEST, {"n": 17}),
            timeout=5.0,
        )
        assert reply.payload["echo"] == 17

    def test_timeout_and_retry_against_a_dead_port(self, loopback):
        runtime, book, t1, _t2 = loopback
        # Node 9 has a book entry but nothing listening there.
        book[9] = ("127.0.0.1", 1)
        a = RpcEndpoint(1, t1, runtime)
        policy = RetryPolicy(timeout=0.05, retries=1)
        with pytest.raises(RpcTimeout) as exc:
            runtime.run_future(
                a.request(9, MessageType.APP_REQUEST, {}, policy=policy),
                timeout=10.0,
            )
        # First send plus one retransmission, then the failure.
        assert exc.value.attempts == 2

    def test_send_to_dead_peer_drops_silently(self, loopback):
        runtime, book, t1, _t2 = loopback
        book[9] = ("127.0.0.1", 1)
        before = t1.stats.messages_dropped
        t1.send(Message(MessageType.APP_REQUEST, src=1, dst=9))
        _drain_until(runtime,
                     lambda: t1.stats.messages_dropped == before + 1)

    def test_send_to_unknown_node_drops_immediately(self, loopback):
        _runtime, _book, t1, _t2 = loopback
        before = t1.stats.messages_dropped
        t1.send(Message(MessageType.APP_REQUEST, src=1, dst=99))
        assert t1.stats.messages_dropped == before + 1

    def test_shutdown_fails_in_flight_requests(self, loopback):
        runtime, _book, t1, t2 = loopback
        a = RpcEndpoint(1, t1, runtime)
        b = RpcEndpoint(2, t2, runtime)
        b.on(MessageType.APP_REQUEST, lambda msg: None)   # never replies
        future = a.request(2, MessageType.APP_REQUEST, {},
                           policy=RetryPolicy(timeout=10.0, retries=0))
        runtime.call_later(0.05, a.shutdown, label="detach")
        with pytest.raises(RpcTimeout):
            runtime.run_future(future, timeout=5.0)

    def test_detached_node_stops_receiving(self, loopback):
        runtime, _book, t1, t2 = loopback
        received = []
        t2.attach(2, received.append)
        t2.detach(2)
        before_delivered = t2.stats.messages_delivered
        t1.send(Message(MessageType.APP_REQUEST, src=1, dst=2))
        # The frame either fails to connect (server closed) or arrives
        # with no handler attached; both count as a drop, not a crash.
        _drain_until(
            runtime,
            lambda: (t1.stats.messages_dropped
                     + t2.stats.messages_dropped) >= 1,
        )
        assert t2.stats.messages_delivered == before_delivered
        assert received == []
