"""Tests for the static linter (repro.analysis.lint).

Each rule is exercised against a fixture under ``tests/fixtures/lint``
(kept as ``.py.txt`` so linting ``tests/`` does not pick them up);
fixtures contain both a flagged construct and a suppressed one, so the
tests pin down the rule AND the suppression syntax.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.lint import (
    SourceFile,
    lint_files,
    lint_source,
    main,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def _fixture(name: str, fake_path: str) -> SourceFile:
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return SourceFile.parse(fake_path, source)


def _lint_fixture(name: str, fake_path: str):
    return lint_files([_fixture(name, fake_path)])


class TestBlockingCalls:
    def test_flags_sleep_socket_open_but_not_suppressed(self):
        findings = _lint_fixture(
            "blocking.py.txt", "src/repro/core/fixture.py"
        )
        rules = [f.rule for f in findings]
        assert rules == ["KHZ001"] * 4
        messages = " ".join(f.message for f in findings)
        assert "time.sleep" in messages
        assert "socket.socket" in messages
        assert "open" in messages

    def test_scope_limited_to_sim_code(self):
        # Outside SIM_SCOPES KHZ001 stays quiet (KHZ011 has its own
        # view of these calls, with its own scoping and slug).
        findings = _lint_fixture(
            "blocking.py.txt", "src/repro/bench/fixture.py"
        )
        assert [f for f in findings if f.rule == "KHZ001"] == []


class TestBroadExcept:
    def test_flags_silent_handlers_only(self):
        findings = _lint_fixture(
            "broad_except.py.txt", "src/repro/consistency/fixture.py"
        )
        assert [f.rule for f in findings] == ["KHZ003", "KHZ003"]
        assert "bare except" in findings[1].message

    def test_scope_limited_to_repro(self):
        findings = _lint_fixture("broad_except.py.txt", "elsewhere/fixture.py")
        assert findings == []


class TestStaleContexts:
    def test_flags_use_after_unlock(self):
        findings = _lint_fixture("stale_context.py.txt", "anywhere.py")
        assert [f.rule for f in findings] == ["KHZ004"]
        assert "'ctx'" in findings[0].message
        assert "bad" in findings[0].message

    def test_try_finally_poisons_only_later_lines(self):
        findings = _lint_fixture("stale_context_flow.py.txt", "anywhere.py")
        assert [f.rule for f in findings] == ["KHZ004", "KHZ004"]
        # The read inside the try body precedes the finally unlock and
        # is clean; only the read after the whole statement flags.
        assert "finally_unlock" in findings[0].message

    def test_with_as_rebinding_clears_staleness(self):
        findings = _lint_fixture("stale_context_flow.py.txt", "anywhere.py")
        messages = " ".join(f.message for f in findings)
        # ``with ... as ctx`` re-binds the name, so with_rebinding is
        # clean — but binding a *different* name leaves ctx stale.
        assert "with_rebinding" not in messages
        assert "with_other_binding" in messages


class TestErrorTaxonomy:
    def test_flags_foreign_and_unbound_raises(self):
        findings = _lint_fixture(
            "taxonomy.py.txt", "src/repro/consistency/fixture.py"
        )
        assert [f.rule for f in findings] == ["KHZ005", "KHZ005"]
        by_message = " ".join(f.message for f in findings)
        assert "RuntimeError" in by_message
        assert "never imported" in by_message

    def test_scope_limited_to_protocol_code(self):
        findings = _lint_fixture("taxonomy.py.txt", "src/repro/fs/fixture.py")
        assert findings == []


class TestMessageCompleteness:
    def _files(self):
        return [
            _fixture("message.py.txt", "src/repro/net/message.py"),
            _fixture("handlers.py.txt", "src/repro/consistency/handlers.py"),
        ]

    def test_flags_orphan_member_reply_class_and_missing_fallback(self):
        findings = lint_files(self._files())
        rules = sorted(f.message.split()[0] for f in findings)
        assert len(findings) == 3
        assert {f.rule for f in findings} == {"KHZ002"}
        messages = " ".join(f.message for f in findings)
        assert "MessageType.ORPHAN" in messages          # unhandled
        assert "ORPHAN_ALLOWED" not in messages          # suppressed
        assert "REPLY_TYPES" in messages                 # reply-class
        assert "BatchOnlyManager" in messages            # missing-fallback
        assert "CompleteManager" not in messages
        assert rules  # keep flake-style vars used


class TestPrivateDaemonAccess:
    def test_flags_private_access_outside_core(self):
        findings = _lint_fixture(
            "private_attr.py.txt", "src/repro/consistency/fixture.py"
        )
        assert [f.rule for f in findings] == ["KHZ006"] * 4
        messages = " ".join(f.message for f in findings)
        assert "._hinted_rids" in messages      # Name base
        assert "._ctx_pages" in messages        # daemon2 local
        assert "._alive" in messages            # cluster.daemon(1) call base
        assert "._page_waiters" in messages     # cm.host attribute base
        assert "__dict__" not in messages       # dunders exempt
        assert "._internal" not in messages     # non-daemon base exempt

    def test_core_package_is_exempt(self):
        findings = _lint_fixture(
            "private_attr.py.txt", "src/repro/core/fixture.py"
        )
        assert findings == []


class TestEngineWire:
    def test_flags_direct_wire_access_in_policy_code(self):
        findings = _lint_fixture(
            "engine_wire.py.txt", "src/repro/consistency/fixture.py"
        )
        assert [f.rule for f in findings] == ["KHZ007"] * 3
        messages = " ".join(f.message for f in findings)
        assert "host.rpc" in messages
        assert "host.reply_request" in messages
        assert "host.reply_error" in messages
        # Only the three direct calls flag: the suppressed reply, the
        # engine-primitive calls, and the non-daemon base stay clean.
        assert {f.line for f in findings} == {11, 13, 15}

    def test_engine_package_is_exempt(self):
        findings = _lint_fixture(
            "engine_wire.py.txt", "src/repro/consistency/engine/fixture.py"
        )
        assert [f.rule for f in findings] == []

    def test_scope_limited_to_consistency_layer(self):
        findings = _lint_fixture(
            "engine_wire.py.txt", "src/repro/core/fixture.py"
        )
        assert findings == []


class TestDirectScheduler:
    def test_flags_raw_timer_calls_in_consistency_code(self):
        findings = _lint_fixture(
            "direct_scheduler.py.txt", "src/repro/consistency/fixture.py"
        )
        assert [f.rule for f in findings] == ["KHZ008"] * 3
        messages = " ".join(f.message for f in findings)
        assert ".call_later" in messages
        assert ".call_at" in messages
        assert ".call_soon" in messages
        assert "schedule explorer" in messages
        # The suppressed timer (line 17) does not flag.
        assert 17 not in {f.line for f in findings}

    def test_engine_code_is_also_covered(self):
        # Unlike KHZ007, the engine package gets no exemption: its
        # events need labels just as much as policy code's do.
        findings = _lint_fixture(
            "direct_scheduler.py.txt",
            "src/repro/consistency/engine/fixture.py",
        )
        assert [f.rule for f in findings] == ["KHZ008"] * 3

    def test_scope_limited_to_consistency_layer(self):
        findings = _lint_fixture(
            "direct_scheduler.py.txt", "src/repro/net/fixture.py"
        )
        assert findings == []


class TestPageCopies:
    def test_flags_unjustified_bytes_in_hot_function(self):
        findings = _lint_fixture(
            "page_copy.py.txt", "src/repro/core/dataplane.py"
        )
        assert [f.rule for f in findings] == ["KHZ009"]
        assert "op_read" in findings[0].message
        assert findings[0].line == 6
        # The suppressed copy (line 8) and the arg-less bytes() (line 9)
        # stay clean, as does compute_diff — not a dataplane hot func.

    def test_hot_functions_are_per_file(self):
        findings = _lint_fixture(
            "page_copy.py.txt", "src/repro/consistency/diffs.py"
        )
        assert [f.rule for f in findings] == ["KHZ009"]
        assert "compute_diff" in findings[0].message
        assert findings[0].line == 14

    def test_scope_limited_to_hot_path_files(self):
        findings = _lint_fixture(
            "page_copy.py.txt", "src/repro/consistency/manager.py"
        )
        assert findings == []


class TestSpawnLabels:
    def test_flags_unlabeled_and_empty_labels(self):
        findings = _lint_fixture(
            "spawn_label.py.txt", "src/repro/consistency/fixture.py"
        )
        assert [f.rule for f in findings] == ["KHZ010"] * 5
        messages = " ".join(f.message for f in findings)
        assert ".spawn(...)" in messages
        assert ".spawn_handler(...)" in messages
        assert ".pipeline(...)" in messages
        assert "empty" in messages

    def test_scope_limited_to_repro(self):
        findings = _lint_fixture("spawn_label.py.txt", "elsewhere/fixture.py")
        assert findings == []


class TestRuntimeDeps:
    def test_flags_clock_loop_and_socket_calls(self):
        findings = _lint_fixture(
            "runtime_deps.py.txt", "src/repro/fs/fixture.py"
        )
        assert [f.rule for f in findings] == ["KHZ011"] * 4
        messages = " ".join(f.message for f in findings)
        assert "time.time" in messages
        assert "time.monotonic" in messages
        assert "asyncio.get_event_loop" in messages
        assert "socket.socket" in messages
        # The suppressed perf_counter (line 25) does not flag.
        assert 25 not in {f.line for f in findings}

    def test_driver_modules_may_own_clocks_but_not_sockets(self):
        findings = _lint_fixture(
            "runtime_deps.py.txt", "src/repro/bench/hotpath.py"
        )
        khz011 = [f for f in findings if f.rule == "KHZ011"]
        assert len(khz011) == 1
        assert "socket.socket" in khz011[0].message

    def test_runtime_seam_modules_are_exempt(self):
        findings = _lint_fixture(
            "runtime_deps.py.txt", "src/repro/net/aio.py"
        )
        assert [f for f in findings if f.rule == "KHZ011"] == []

    def test_scope_limited_to_repro(self):
        findings = _lint_fixture(
            "runtime_deps.py.txt", "elsewhere/fixture.py"
        )
        assert findings == []

    def test_real_runtime_modules_stay_clean(self):
        # The shipped seam + driver modules must satisfy their own rule.
        root = Path(__file__).parent.parent / "src"
        paths = [
            "repro/net/aio.py", "repro/net/tcp.py",
            "repro/tools/cluster.py", "repro/bench/transport.py",
        ]
        files = [
            SourceFile.parse(f"src/{p}",
                             (root / p).read_text(encoding="utf-8"))
            for p in paths
        ]
        findings = lint_files(files)
        assert [f for f in findings if f.rule == "KHZ011"] == []


class TestPlacementSeam:
    def test_flags_manager_reads_and_ring_math(self):
        findings = _lint_fixture(
            "placement_seam.py.txt", "src/repro/core/fixture.py"
        )
        assert [f.rule for f in findings] == ["KHZ012"] * 4
        messages = " ".join(f.message for f in findings)
        assert "mix64" in messages               # import AND call
        assert "cluster_manager_node" in messages
        assert "director_of" not in messages     # suppressed import
        lines = {f.line for f in findings}
        assert 13 not in lines   # kernel.cluster_manager_node: property
        assert 14 not in lines   # suppressed read
        assert 15 not in lines   # Store context: configuring stays legal
        assert 16 not in lines   # replace(...) keyword: a write, not a read

    def test_placement_package_is_exempt(self):
        findings = _lint_fixture(
            "placement_seam.py.txt",
            "src/repro/core/placement/fixture.py",
        )
        assert findings == []

    def test_scope_limited_to_repro(self):
        findings = _lint_fixture(
            "placement_seam.py.txt", "elsewhere/fixture.py"
        )
        assert findings == []

    def test_table_and_geometry_stay_importable(self):
        # The churn benchmark measures DirectorTable itself, so the
        # table and the address geometry are deliberately unfenced.
        source = (
            "from repro.core.placement.ring import (\n"
            "    BUCKET_BYTES, DirectorTable, bucket_of)\n\n"
            "TABLE = DirectorTable(BUCKET_BYTES // (1 << 20), [1, 2])\n"
            "BUCKET = bucket_of(0)\n"
        )
        findings = lint_source(source, path="src/repro/bench/x.py")
        assert findings == []


class TestSuppressions:
    def test_empty_reason_is_itself_a_finding(self):
        source = (
            "import time\n\n\ndef f():\n"
            "    time.sleep(1)  # khz: allow-blocking-call()\n"
        )
        findings = lint_source(source, path="src/repro/core/x.py")
        assert len(findings) == 1
        assert "needs a written reason" in findings[0].message

    def test_wrong_slug_does_not_suppress(self):
        source = (
            "import time\n\n\ndef f():\n"
            "    time.sleep(1)  # khz: allow-broad-except(wrong slug)\n"
        )
        findings = lint_source(source, path="src/repro/core/x.py")
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message

    def test_multiple_suppressions_on_one_line_all_parse(self):
        sf = SourceFile.parse(
            "x.py",
            "pass  # khz: allow-copy(left one) # khz: allow-lock-order(right one)\n",
        )
        assert sf.suppressions[1] == [
            ("copy", "left one"), ("lock-order", "right one"),
        ]

    def test_second_suppression_on_a_line_still_applies(self):
        source = (
            "import time\n\n\ndef f():\n"
            "    time.sleep(1)  # khz: allow-copy(other rule) # khz: allow-blocking-call(timer model)\n"
        )
        findings = lint_source(source, path="src/repro/core/x.py")
        assert findings == []

    def test_unclosed_reason_paren_does_not_suppress(self):
        source = (
            "import time\n\n\ndef f():\n"
            "    time.sleep(1)  # khz: allow-blocking-call(reason unclosed\n"
        )
        findings = lint_source(source, path="src/repro/core/x.py")
        assert [f.rule for f in findings] == ["KHZ001"]
        assert "time.sleep" in findings[0].message


class TestStaticTables:
    """KHZ013: TRANSITIONS tables and dispatch maps stay literal."""

    def _findings(self):
        return _lint_fixture(
            "static_table.py.txt", "src/repro/consistency/fixture.py"
        )

    def test_every_breakage_flags_khz013(self):
        findings = self._findings()
        assert findings and all(f.rule == "KHZ013" for f in findings)
        messages = " ".join(f.message for f in findings)
        # Table shape: non-dict, computed key, computed value, unpack.
        assert "literal dict" in messages
        assert "literal PageEvent members" in messages
        assert "literal LocalPageState" in messages
        assert "unpack another mapping" in messages
        # Runtime mutation: subscript assign, .update, del, rebind.
        assert "may not be assigned at runtime" in messages
        assert "TRANSITIONS.update(...)" in messages
        assert "may not be deleted" in messages
        assert "declared once" in messages
        # Dispatch surfaces: mixed-key display, reg, cm_dispatch.
        assert "key every entry with a literal member" in messages
        assert "literal MessageType member" in messages
        assert "literal handler-name string" in messages

    def test_clean_spellings_and_suppression_stay_quiet(self):
        findings = self._findings()
        # One finding per seeded defect — the clean table, the clean
        # dispatch map, the plain dict, and the suppressed rebind in
        # swap_allowed contribute nothing.
        assert len(findings) == 11
        lines = " ".join(f.message for f in findings)
        assert "swap_allowed" not in lines

    def test_rule_is_scoped_to_the_shipped_package(self):
        source = "TRANSITIONS = build()\nTRANSITIONS.update({})\n"
        assert lint_source(source, path="tests/conftest.py") == []
        flagged = lint_source(source, path="src/repro/consistency/x.py")
        assert [f.rule for f in flagged] == ["KHZ013"] * 2

    def test_real_transitions_tables_extract_clean(self):
        # The four shipped CMs must satisfy their own input contract.
        from repro.analysis import sources
        from repro.analysis.lint import _Reporter
        from repro.analysis.lint_protocol import check_static_tables

        reporter = _Reporter()
        for sf in sources.collect(["src/repro/consistency/"]):
            check_static_tables(sf, reporter)
        assert reporter.findings == []


class TestTree:
    def test_shipped_tree_is_clean(self):
        # The repo's own source must lint clean — the CI gate.
        assert main(["src/", "tests/", "examples/"]) == 0
