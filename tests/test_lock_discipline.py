"""Lock-context discipline is uniform across consistency protocols.

Using a context after its unlock — including unlocking it twice — is a
client bug and raises :class:`InvalidLockContext` regardless of which
consistency manager owns the region.  This is acquire-side validation,
distinct from release-type *network* failures, which are retried in
the background and never surface (paper Section 3.5).
"""

from __future__ import annotations

import pytest

from repro.core.attributes import RegionAttributes
from repro.core.errors import InvalidLockContext
from repro.core.locks import LockMode

PROTOCOLS = ("crew", "release", "eventual", "mobile")


@pytest.fixture(params=PROTOCOLS)
def protocol(request):
    return request.param


def _region(cluster, protocol):
    kz = cluster.client(node=1)
    attrs = RegionAttributes(consistency_protocol=protocol)
    desc = kz.reserve(2 * 4096, attrs)
    kz.allocate(desc.rid)
    kz.write_at(desc.rid, b"seed")
    return kz, desc


class TestLockDiscipline:
    def test_double_unlock_raises(self, cluster, protocol):
        kz, desc = _region(cluster, protocol)
        ctx = kz.lock(desc.rid, 4096, LockMode.WRITE)
        kz.write(ctx, desc.rid, b"x")
        kz.unlock(ctx)
        with pytest.raises(InvalidLockContext):
            kz.unlock(ctx)

    def test_read_after_unlock_raises(self, cluster, protocol):
        kz, desc = _region(cluster, protocol)
        ctx = kz.lock(desc.rid, 4096, LockMode.READ)
        kz.unlock(ctx)
        with pytest.raises(InvalidLockContext):
            kz.read(ctx, desc.rid, 4)  # khz: allow-stale-context(this test proves the stale read raises)

    def test_write_after_unlock_raises(self, cluster, protocol):
        kz, desc = _region(cluster, protocol)
        ctx = kz.lock(desc.rid, 4096, LockMode.WRITE)
        kz.write(ctx, desc.rid, b"x")
        kz.unlock(ctx)
        with pytest.raises(InvalidLockContext):
            kz.write(ctx, desc.rid, b"y")  # khz: allow-stale-context(this test proves the stale write raises)

    def test_fresh_context_still_works_after_failure(self, cluster, protocol):
        # The InvalidLockContext must not poison the region: a new
        # lock/read cycle right after the client bug succeeds.
        kz, desc = _region(cluster, protocol)
        ctx = kz.lock(desc.rid, 4096, LockMode.READ)
        kz.unlock(ctx)
        with pytest.raises(InvalidLockContext):
            kz.unlock(ctx)
        assert kz.read_at(desc.rid, 4) == b"seed"
