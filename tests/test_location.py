"""Tests for the region-location chain (paper Sections 3.1-3.2):
region directory -> cluster manager -> address map -> cluster walk."""

import pytest

from repro.core.attributes import RegionAttributes
from repro.core.daemon import DaemonConfig
from repro.core.errors import RegionNotFound
from repro.api import create_cluster, create_hierarchy


def reserve_on(cluster, node, size=4096):
    kz = cluster.client(node=node)
    desc = kz.reserve(size)
    kz.allocate(desc.rid)
    kz.write_at(desc.rid, b"here")
    return desc


class TestLookupTiers:
    def test_local_directory_hit_after_first_lookup(self, cluster):
        desc = reserve_on(cluster, node=1)
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 4)
        tiers_before = dict(cluster.daemon(3).stats.lookup_tiers)
        kz3.read_at(desc.rid, 4)
        tiers_after = cluster.daemon(3).stats.lookup_tiers
        assert tiers_after.get("directory", 0) > tiers_before.get("directory", 0)

    def test_cluster_hint_tier_used_when_warm(self, cluster):
        desc = reserve_on(cluster, node=1)
        cluster.run(1.0)   # hint update reaches the cluster manager
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 4)
        assert cluster.daemon(3).stats.lookup_tiers.get("cluster", 0) >= 1

    def test_map_tier_when_hints_cold(self, cluster):
        desc = reserve_on(cluster, node=1)
        # Query immediately from another node before hints propagate,
        # with the manager's hint cache cleared.
        cluster.daemon(0).cluster_role._region_hints.clear()
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 4)
        assert cluster.daemon(3).stats.lookup_tiers.get("map", 0) >= 1

    def test_hints_disabled_falls_to_map(self):
        config = DaemonConfig(use_cluster_hints=False)
        cluster = create_cluster(num_nodes=4, config=config)
        desc = reserve_on(cluster, node=1)
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 4)
        tiers = cluster.daemon(3).stats.lookup_tiers
        assert tiers.get("cluster", 0) == 0
        assert tiers.get("map", 0) >= 1

    def test_tiny_directory_forces_remote_lookups(self):
        config = DaemonConfig(region_directory_capacity=1)
        cluster = create_cluster(num_nodes=4, config=config)
        kz1 = cluster.client(node=1)
        descs = []
        for _ in range(3):
            d = kz1.reserve(4096)
            kz1.allocate(d.rid)
            kz1.write_at(d.rid, b"data")
            descs.append(d)
        kz3 = cluster.client(node=3)
        for d in descs:
            kz3.read_at(d.rid, 4)
        # Re-touch in order: capacity-1 cache thrashes, so directory
        # hits stay rare and deeper tiers are exercised.
        for d in descs:
            kz3.read_at(d.rid, 4)
        tiers = cluster.daemon(3).stats.lookup_tiers
        deeper = tiers.get("cluster", 0) + tiers.get("map", 0)
        assert deeper >= 4


class TestStaleness:
    def test_unknown_region_fails_cleanly(self, cluster):
        kz = cluster.client(node=2)
        with pytest.raises(RegionNotFound):
            kz.read_at(0x7777777770000, 4)

    def test_cluster_walk_finds_region_when_map_home_down(self):
        """If the address-map home (node 0) is unreachable and hints
        are cold, the cluster walk still locates the region (Section
        3.1: 'the region can still be located using a cluster-walk
        algorithm')."""
        cluster = create_cluster(num_nodes=4)
        desc = reserve_on(cluster, node=1)
        cluster.run(1.0)
        # Node 3 knows nothing about the region; now the cluster
        # manager/bootstrap node dies, taking hints AND map home away.
        cluster.crash(0)
        kz3 = cluster.client(node=3)
        assert kz3.read_at(desc.rid, 4) == b"here"
        assert cluster.daemon(3).stats.lookup_tiers.get("walk", 0) >= 1


class TestHintRetraction:
    """Tier-2 hints must follow the data out: a node that stops
    caching a region withdraws its hint, so the manager never serves
    hints that cost every looker-up a wasted redirect."""

    def test_unreserve_withdraws_manager_hint(self, cluster):
        desc = reserve_on(cluster, node=1)
        cluster.run(1.0)
        role = cluster.daemon(0).cluster_role
        assert role.lookup_hint(desc.rid) is not None
        cluster.client(node=1).unreserve(desc.rid)
        cluster.run(1.0)
        assert role.lookup_hint(desc.rid) is None

    def test_stale_hint_costs_one_fallthrough_not_wrong_answer(
        self, cluster
    ):
        """After an unreserve the hint is gone; a later lookup pays at
        most one failed hint RPC, then gets the authoritative answer
        from the map — never a descriptor for a dead region."""
        desc = reserve_on(cluster, node=1)
        cluster.run(1.0)
        cluster.client(node=1).unreserve(desc.rid)
        cluster.run(1.0)
        kz3 = cluster.client(node=3)
        with pytest.raises(RegionNotFound):
            kz3.read_at(desc.rid, 4)
        tiers = cluster.daemon(3).stats.lookup_tiers
        # One orderly fallthrough (hint miss -> map); no walk storm.
        assert tiers.get("cluster", 0) == 0
        assert tiers.get("walk", 0) == 0

    def test_evicting_last_cached_page_retracts_hint(self, cluster):
        desc = reserve_on(cluster, node=1)
        cluster.run(1.0)
        role = cluster.daemon(0).cluster_role
        # Cold hints force node 3 through the map tier, which is the
        # path that advertises node 3 as a cacher.
        role._region_hints.clear()
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 4)   # node 3 now caches and hints
        cluster.run(1.0)
        _, nodes = role.lookup_hint(desc.rid)
        assert 3 in nodes
        d3 = cluster.daemon(3)
        for entry in list(d3.page_directory.entries_for_region(desc.rid)):
            page = d3.storage.peek(entry.address)
            assert page is not None
            assert d3.data.on_disk_evict(page)
            d3.data.drop_local_page(entry.address)
        cluster.run(1.0)   # the dropped-hint update reaches the manager
        hint = role.lookup_hint(desc.rid)
        assert hint is None or 3 not in hint[1]
        # The region itself is still perfectly reachable.
        assert cluster.client(node=2).read_at(desc.rid, 4) == b"here"


class TestClusterWalkFallback:
    """Tier 4 (Section 3.1's cluster walk) under the two failure
    shapes that disable the earlier remote tiers."""

    def test_walk_when_manager_and_map_home_both_dead(self):
        hierarchy = create_hierarchy([2, 2])
        desc = reserve_on(hierarchy, node=1)
        hierarchy.run(1.0)
        # Node 3's cluster manager (node 2) and the map home /
        # bootstrap (node 0) both die: tiers 2 and 3 are gone.
        hierarchy.crash(2)
        hierarchy.crash(0)
        kz3 = hierarchy.client(node=3)
        assert kz3.read_at(desc.rid, 4) == b"here"
        assert hierarchy.daemon(3).stats.lookup_tiers.get("walk", 0) >= 1

    def test_manager_side_lookup_survives_dead_peer_managers(self):
        """A cluster manager whose peer managers all time out falls
        through to the map cleanly instead of erroring."""
        hierarchy = create_hierarchy([2, 2])
        desc = reserve_on(hierarchy, node=3)
        hierarchy.run(1.0)
        hierarchy.crash(2)   # the only peer manager of node 0
        kz0 = hierarchy.client(node=0)
        assert kz0.read_at(desc.rid, 4) == b"here"
        tiers = hierarchy.daemon(0).stats.lookup_tiers
        assert tiers.get("map", 0) + tiers.get("walk", 0) >= 1

    def test_walk_exhaustion_reports_region_not_found(self):
        """Even with every remote tier dead, an address nobody has
        reserved fails with the clean error, not a timeout blowup."""
        cluster = create_cluster(num_nodes=3)
        cluster.crash(0)
        kz2 = cluster.client(node=2)
        with pytest.raises(RegionNotFound):
            kz2.read_at(0x7777777770000, 4)


class TestSystemRegionBootstrap:
    def test_system_descriptor_pinned_everywhere(self, cluster):
        for node in cluster.node_ids():
            directory = cluster.daemon(node).region_directory
            assert directory.get(0) is not None

    def test_address_map_survives_region_directory_churn(self, cluster):
        """Region 0 is pinned: unbounded region traffic never evicts
        the bootstrap descriptor."""
        kz1 = cluster.client(node=1)
        directory = cluster.daemon(1).region_directory
        for _ in range(directory.capacity + 8):
            kz1.reserve(4096)
        assert directory.get(0) is not None
