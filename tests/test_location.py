"""Tests for the region-location chain (paper Sections 3.1-3.2):
region directory -> cluster manager -> address map -> cluster walk."""

import pytest

from repro.core.attributes import RegionAttributes
from repro.core.daemon import DaemonConfig
from repro.core.errors import RegionNotFound
from repro.api import create_cluster


def reserve_on(cluster, node, size=4096):
    kz = cluster.client(node=node)
    desc = kz.reserve(size)
    kz.allocate(desc.rid)
    kz.write_at(desc.rid, b"here")
    return desc


class TestLookupTiers:
    def test_local_directory_hit_after_first_lookup(self, cluster):
        desc = reserve_on(cluster, node=1)
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 4)
        tiers_before = dict(cluster.daemon(3).stats.lookup_tiers)
        kz3.read_at(desc.rid, 4)
        tiers_after = cluster.daemon(3).stats.lookup_tiers
        assert tiers_after.get("directory", 0) > tiers_before.get("directory", 0)

    def test_cluster_hint_tier_used_when_warm(self, cluster):
        desc = reserve_on(cluster, node=1)
        cluster.run(1.0)   # hint update reaches the cluster manager
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 4)
        assert cluster.daemon(3).stats.lookup_tiers.get("cluster", 0) >= 1

    def test_map_tier_when_hints_cold(self, cluster):
        desc = reserve_on(cluster, node=1)
        # Query immediately from another node before hints propagate,
        # with the manager's hint cache cleared.
        cluster.daemon(0).cluster_role._region_hints.clear()
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 4)
        assert cluster.daemon(3).stats.lookup_tiers.get("map", 0) >= 1

    def test_hints_disabled_falls_to_map(self):
        config = DaemonConfig(use_cluster_hints=False)
        cluster = create_cluster(num_nodes=4, config=config)
        desc = reserve_on(cluster, node=1)
        kz3 = cluster.client(node=3)
        kz3.read_at(desc.rid, 4)
        tiers = cluster.daemon(3).stats.lookup_tiers
        assert tiers.get("cluster", 0) == 0
        assert tiers.get("map", 0) >= 1

    def test_tiny_directory_forces_remote_lookups(self):
        config = DaemonConfig(region_directory_capacity=1)
        cluster = create_cluster(num_nodes=4, config=config)
        kz1 = cluster.client(node=1)
        descs = []
        for _ in range(3):
            d = kz1.reserve(4096)
            kz1.allocate(d.rid)
            kz1.write_at(d.rid, b"data")
            descs.append(d)
        kz3 = cluster.client(node=3)
        for d in descs:
            kz3.read_at(d.rid, 4)
        # Re-touch in order: capacity-1 cache thrashes, so directory
        # hits stay rare and deeper tiers are exercised.
        for d in descs:
            kz3.read_at(d.rid, 4)
        tiers = cluster.daemon(3).stats.lookup_tiers
        deeper = tiers.get("cluster", 0) + tiers.get("map", 0)
        assert deeper >= 4


class TestStaleness:
    def test_unknown_region_fails_cleanly(self, cluster):
        kz = cluster.client(node=2)
        with pytest.raises(RegionNotFound):
            kz.read_at(0x7777777770000, 4)

    def test_cluster_walk_finds_region_when_map_home_down(self):
        """If the address-map home (node 0) is unreachable and hints
        are cold, the cluster walk still locates the region (Section
        3.1: 'the region can still be located using a cluster-walk
        algorithm')."""
        cluster = create_cluster(num_nodes=4)
        desc = reserve_on(cluster, node=1)
        cluster.run(1.0)
        # Node 3 knows nothing about the region; now the cluster
        # manager/bootstrap node dies, taking hints AND map home away.
        cluster.crash(0)
        kz3 = cluster.client(node=3)
        assert kz3.read_at(desc.rid, 4) == b"here"
        assert cluster.daemon(3).stats.lookup_tiers.get("walk", 0) >= 1


class TestSystemRegionBootstrap:
    def test_system_descriptor_pinned_everywhere(self, cluster):
        for node in cluster.node_ids():
            directory = cluster.daemon(node).region_directory
            assert directory.get(0) is not None

    def test_address_map_survives_region_directory_churn(self, cluster):
        """Region 0 is pinned: unbounded region traffic never evicts
        the bootstrap descriptor."""
        kz1 = cluster.client(node=1)
        directory = cluster.daemon(1).region_directory
        for _ in range(directory.capacity + 8):
            kz1.reserve(4096)
        assert directory.get(0) is not None
