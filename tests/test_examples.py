"""Smoke tests: every example script runs to completion.

The examples double as end-to-end acceptance tests for the public
API; each one exercises a different consumer from the paper.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_example_inventory():
    """The documented example set is present."""
    for expected in (
        "quickstart.py",
        "filesystem.py",
        "objects.py",
        "web_cache.py",
        "directory_service.py",
        "figure2_trace.py",
        "operations.py",
    ):
        assert expected in EXAMPLES


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"
